package dnsmsg

import "testing"

// FuzzDecode must never panic, and accepted messages must re-encode.
func FuzzDecode(f *testing.F) {
	q, _ := NewQuery(7, "www.example.com").Encode()
	f.Add(q)
	r, _ := NewResponse(NewQuery(8, "a.b"), [4]byte{1, 2, 3, 4}, 60).Encode()
	f.Add(r)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := m.Encode(); err != nil {
			// Decoded names may contain characters Encode rejects;
			// errors are fine, panics are not.
			_ = err
		}
	})
}

// FuzzUnframeTCP must never panic or over-consume.
func FuzzUnframeTCP(f *testing.F) {
	q, _ := NewQuery(9, "x.y").Encode()
	f.Add(FrameTCP(q))
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, consumed := UnframeTCP(data)
		if consumed > len(data) {
			t.Fatalf("consumed %d > %d", consumed, len(data))
		}
		total := 0
		for _, m := range msgs {
			total += 2 + len(m)
		}
		if total != consumed {
			t.Fatalf("consumed %d but messages account for %d", consumed, total)
		}
	})
}
