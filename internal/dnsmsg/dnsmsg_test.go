package dnsmsg

import (
	"bytes"
	"testing"
	"testing/quick"

	"intango/internal/packet"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.dropbox.com")
	b, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.IsResponse() {
		t.Fatalf("header = %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.dropbox.com" || got.Questions[0].Type != TypeA {
		t.Fatalf("questions = %+v", got.Questions)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "example.com")
	addr := packet.AddrFrom4(93, 184, 216, 34)
	r := NewResponse(q, addr, 300)
	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsResponse() || got.ID != 7 {
		t.Fatalf("header = %+v", got)
	}
	if len(got.Answers) != 1 || got.Answers[0].Addr != addr || got.Answers[0].TTL != 300 {
		t.Fatalf("answers = %+v", got.Answers)
	}
}

func TestEncodeRejectsBadLabels(t *testing.T) {
	q := NewQuery(1, "bad..name")
	if _, err := q.Encode(); err == nil {
		t.Fatal("want error for empty label")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short message should fail")
	}
	q := NewQuery(1, "a.b")
	b, _ := q.Encode()
	if _, err := Decode(b[:len(b)-2]); err == nil {
		t.Fatal("truncated question should fail")
	}
}

func TestTCPFraming(t *testing.T) {
	q1, _ := NewQuery(1, "a.com").Encode()
	q2, _ := NewQuery(2, "b.com").Encode()
	stream := append(FrameTCP(q1), FrameTCP(q2)...)
	// Feed in two partial chunks.
	msgs, consumed := UnframeTCP(stream[:len(FrameTCP(q1))+3])
	if len(msgs) != 1 || consumed != len(FrameTCP(q1)) {
		t.Fatalf("partial unframe: %d msgs, %d consumed", len(msgs), consumed)
	}
	msgs, consumed = UnframeTCP(stream)
	if len(msgs) != 2 || consumed != len(stream) {
		t.Fatalf("full unframe: %d msgs, %d consumed", len(msgs), consumed)
	}
	if !bytes.Equal(msgs[1], q2) {
		t.Fatal("second message corrupted")
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		name := "x" + string(rune('a'+a%26)) + "." + string(rune('a'+b%26)) + string(rune('a'+c%26)) + ".org"
		q := NewQuery(9, name)
		enc, err := q.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		return err == nil && got.Questions[0].Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
