// Package dnsmsg implements the subset of the DNS wire format
// (RFC 1035) the system needs: A-record queries and responses over UDP,
// and the 2-byte length-prefix framing used for DNS over TCP. It is
// used by the INTANG DNS forwarder, the simulated resolvers, and the
// GFW's DNS poisoner.
package dnsmsg

import (
	"encoding/binary"
	"fmt"
	"strings"

	"intango/internal/packet"
)

// Header flag bits.
const (
	FlagResponse      = 0x8000
	FlagAuthoritative = 0x0400
	FlagRecursionDes  = 0x0100
	FlagRecursionAv   = 0x0080
)

// Record types and classes used here.
const (
	TypeA   = 1
	ClassIN = 1
)

// Question is one query entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Answer is one A-record answer.
type Answer struct {
	Name string
	TTL  uint32
	Addr packet.Addr
}

// Message is a DNS message restricted to A queries/answers.
type Message struct {
	ID        uint16
	Flags     uint16
	Questions []Question
	Answers   []Answer
}

// IsResponse reports whether the QR bit is set.
func (m *Message) IsResponse() bool { return m.Flags&FlagResponse != 0 }

// NewQuery builds a recursive A query for name.
func NewQuery(id uint16, name string) *Message {
	return &Message{
		ID:        id,
		Flags:     FlagRecursionDes,
		Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
	}
}

// NewResponse builds a response answering query with addr.
func NewResponse(query *Message, addr packet.Addr, ttl uint32) *Message {
	resp := &Message{
		ID:        query.ID,
		Flags:     FlagResponse | FlagRecursionDes | FlagRecursionAv,
		Questions: append([]Question(nil), query.Questions...),
	}
	if len(query.Questions) > 0 {
		resp.Answers = []Answer{{Name: query.Questions[0].Name, TTL: ttl, Addr: addr}}
	}
	return resp
}

func appendName(b []byte, name string) ([]byte, error) {
	if name == "" {
		return append(b, 0), nil
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("dnsmsg: bad label %q in %q", label, name)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

func parseName(data []byte, p int) (string, int, error) {
	var labels []string
	for {
		if p >= len(data) {
			return "", 0, fmt.Errorf("dnsmsg: truncated name")
		}
		n := int(data[p])
		if n == 0 {
			p++
			break
		}
		if n >= 0xc0 {
			return "", 0, fmt.Errorf("dnsmsg: compression not supported")
		}
		p++
		if p+n > len(data) {
			return "", 0, fmt.Errorf("dnsmsg: truncated label")
		}
		labels = append(labels, string(data[p:p+n]))
		p += n
	}
	return strings.Join(labels, "."), p, nil
}

// Encode serializes the message.
func (m *Message) Encode() ([]byte, error) {
	b := make([]byte, 12)
	binary.BigEndian.PutUint16(b[0:], m.ID)
	binary.BigEndian.PutUint16(b[2:], m.Flags)
	binary.BigEndian.PutUint16(b[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(b[6:], uint16(len(m.Answers)))
	var err error
	for _, q := range m.Questions {
		if b, err = appendName(b, q.Name); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, q.Type)
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, a := range m.Answers {
		if b, err = appendName(b, a.Name); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, TypeA)
		b = binary.BigEndian.AppendUint16(b, ClassIN)
		b = binary.BigEndian.AppendUint32(b, a.TTL)
		b = binary.BigEndian.AppendUint16(b, 4)
		b = append(b, a.Addr[:]...)
	}
	return b, nil
}

// Decode parses a message.
func Decode(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("dnsmsg: short message: %d bytes", len(data))
	}
	m := &Message{
		ID:    binary.BigEndian.Uint16(data[0:]),
		Flags: binary.BigEndian.Uint16(data[2:]),
	}
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	p := 12
	for i := 0; i < qd; i++ {
		name, np, err := parseName(data, p)
		if err != nil {
			return nil, err
		}
		p = np
		if p+4 > len(data) {
			return nil, fmt.Errorf("dnsmsg: truncated question")
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[p:]),
			Class: binary.BigEndian.Uint16(data[p+2:]),
		})
		p += 4
	}
	for i := 0; i < an; i++ {
		name, np, err := parseName(data, p)
		if err != nil {
			return nil, err
		}
		p = np
		if p+10 > len(data) {
			return nil, fmt.Errorf("dnsmsg: truncated answer")
		}
		typ := binary.BigEndian.Uint16(data[p:])
		ttl := binary.BigEndian.Uint32(data[p+4:])
		rdlen := int(binary.BigEndian.Uint16(data[p+8:]))
		p += 10
		if p+rdlen > len(data) {
			return nil, fmt.Errorf("dnsmsg: truncated rdata")
		}
		a := Answer{Name: name, TTL: ttl}
		if typ == TypeA && rdlen == 4 {
			copy(a.Addr[:], data[p:p+4])
			m.Answers = append(m.Answers, a)
		}
		p += rdlen
	}
	return m, nil
}

// FrameTCP wraps a DNS message in the 2-byte length prefix used on TCP.
func FrameTCP(msg []byte) []byte {
	out := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(out, uint16(len(msg)))
	copy(out[2:], msg)
	return out
}

// UnframeTCP extracts complete DNS messages from a TCP stream buffer,
// returning the messages and the number of bytes consumed.
func UnframeTCP(stream []byte) (msgs [][]byte, consumed int) {
	for {
		if len(stream)-consumed < 2 {
			return msgs, consumed
		}
		n := int(binary.BigEndian.Uint16(stream[consumed:]))
		if len(stream)-consumed-2 < n {
			return msgs, consumed
		}
		msgs = append(msgs, stream[consumed+2:consumed+2+n])
		consumed += 2 + n
	}
}
