package middlebox

import (
	"math/rand"

	"intango/internal/netem"
	"intango/internal/packet"
)

// StatefulFirewall is a sequence-tracking connection firewall of the
// kind §3.4 blames for "Failure 1": it accepts insertion packets the
// end host would ignore, updates its connection state from them, and
// then blocks the legitimate packets that follow. A RST or FIN that
// traverses it kills the connection entry; subsequent packets on that
// connection are dropped.
type StatefulFirewall struct {
	name string
	// ValidateSeq requires in-window sequence numbers before a control
	// packet is honored.
	ValidateSeq bool
	// honorProb is the probability a RST/FIN kills the connection
	// entry (1 unless SetRSTHonorProb was called): some deployments
	// only sometimes act on control packets.
	honorProb float64
	rng       *rand.Rand
	conns     map[packet.FourTuple]*fwConn
}

// SetRSTHonorProb makes RST/FIN handling probabilistic.
func (f *StatefulFirewall) SetRSTHonorProb(p float64, rng *rand.Rand) {
	f.honorProb = p
	f.rng = rng
}

func (f *StatefulFirewall) honors() bool {
	if f.rng == nil {
		return true
	}
	return f.rng.Float64() < f.honorProb
}

type fwConn struct {
	established bool
	dead        bool
	// next expected sequence per direction, keyed by canonical order.
	seqLo, seqHi   packet.Seq
	haveLo, haveHi bool
}

// NewStatefulFirewall builds a firewall middlebox.
func NewStatefulFirewall(name string, validateSeq bool) *StatefulFirewall {
	return &StatefulFirewall{name: name, ValidateSeq: validateSeq, conns: make(map[packet.FourTuple]*fwConn)}
}

// Name implements netem.Processor.
func (f *StatefulFirewall) Name() string { return f.name }

// ConnDead reports whether the firewall killed the connection state for
// the tuple (test/diagnostic hook).
func (f *StatefulFirewall) ConnDead(t packet.FourTuple) bool {
	c, ok := f.conns[t.Canonical()]
	return ok && c.dead
}

// Process implements netem.Processor.
func (f *StatefulFirewall) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	if pkt.TCP == nil {
		return netem.Pass
	}
	key := pkt.Tuple().Canonical()
	tcp := pkt.TCP
	c := f.conns[key]
	if c == nil {
		if tcp.FlagsOnly(packet.FlagSYN) {
			f.conns[key] = &fwConn{}
			return netem.Pass
		}
		// Unknown flow: permissive pass (a NAT would drop; the plain
		// firewall only polices flows it saw open).
		return netem.Pass
	}
	if c.dead {
		// The §3.4 Failure-1 signature: the firewall honored an earlier
		// teardown packet and now blocks the legitimate flow.
		if o := ctx.Obs(); o != nil {
			o.Count("middlebox.fw-drop-dead-conn")
		}
		return netem.Drop
	}
	forward := pkt.Tuple() == key // travelling in canonical direction
	if f.ValidateSeq && c.established {
		if exp, ok := f.expected(c, forward); ok {
			if d := tcp.Seq.Diff(exp); d < -(1<<16) || d > 1<<16 {
				// Wildly out-of-window: not plausible for this flow.
				if o := ctx.Obs(); o != nil {
					o.Count("middlebox.fw-drop-out-of-window")
				}
				return netem.Drop
			}
		}
	}
	switch {
	case tcp.HasFlag(packet.FlagRST):
		if f.honors() {
			c.dead = true
			if o := ctx.Obs(); o != nil {
				o.Count("middlebox.fw-conn-killed")
				o.TracePkt("middlebox", "fw-conn-killed", pkt.Lin.ID, pkt.Lin.Parent, uint32(tcp.Seq), tcp.Flags, f.name+" rst")
			}
		}
		return netem.Pass // the killing packet itself is forwarded
	case tcp.HasFlag(packet.FlagFIN):
		if f.honors() {
			c.dead = true
			if o := ctx.Obs(); o != nil {
				o.Count("middlebox.fw-conn-killed")
				o.TracePkt("middlebox", "fw-conn-killed", pkt.Lin.ID, pkt.Lin.Parent, uint32(tcp.Seq), tcp.Flags, f.name+" fin")
			}
		}
		return netem.Pass
	case tcp.HasFlag(packet.FlagSYN) && tcp.HasFlag(packet.FlagACK):
		c.established = true
	}
	f.track(c, forward, pkt)
	return netem.Pass
}

func (f *StatefulFirewall) expected(c *fwConn, forward bool) (packet.Seq, bool) {
	if forward {
		return c.seqLo, c.haveLo
	}
	return c.seqHi, c.haveHi
}

func (f *StatefulFirewall) track(c *fwConn, forward bool, pkt *packet.Packet) {
	end := pkt.EndSeq()
	if forward {
		if !c.haveLo || end.After(c.seqLo) {
			c.seqLo, c.haveLo = end, true
		}
	} else {
		if !c.haveHi || end.After(c.seqHi) {
			c.seqHi, c.haveHi = end, true
		}
	}
}

// NAT rewrites the client's address to a public one and back, with
// RFC 1624 incremental checksum adjustment — which, like real NAT,
// preserves a deliberately wrong TCP checksum rather than repairing it.
type NAT struct {
	name    string
	Inside  packet.Addr
	Outside packet.Addr
}

// NewNAT builds a NAT translating inside→outside for client traffic.
func NewNAT(name string, inside, outside packet.Addr) *NAT {
	return &NAT{name: name, Inside: inside, Outside: outside}
}

// Name implements netem.Processor.
func (n *NAT) Name() string { return n.name }

// Process implements netem.Processor.
func (n *NAT) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	switch {
	case dir == netem.ToServer && pkt.IP.Src == n.Inside:
		adjustL4Checksum(pkt, n.Inside, n.Outside)
		pkt.IP.Src = n.Outside
		pkt.IP.UpdateChecksum()
	case dir == netem.ToClient && pkt.IP.Dst == n.Outside:
		adjustL4Checksum(pkt, n.Outside, n.Inside)
		pkt.IP.Dst = n.Inside
		pkt.IP.UpdateChecksum()
	}
	return netem.Pass
}

// adjustL4Checksum applies the RFC 1624 incremental update for an
// address substitution old→new to the TCP/UDP checksum.
func adjustL4Checksum(pkt *packet.Packet, oldAddr, newAddr packet.Addr) {
	var ck *uint16
	switch {
	case pkt.TCP != nil:
		ck = &pkt.TCP.Checksum
	case pkt.UDP != nil:
		ck = &pkt.UDP.Checksum
	default:
		return
	}
	sum := uint32(^*ck)
	for i := 0; i < 4; i += 2 {
		oldW := uint32(oldAddr[i])<<8 | uint32(oldAddr[i+1])
		newW := uint32(newAddr[i])<<8 | uint32(newAddr[i+1])
		sum += ^oldW & 0xffff
		sum += newW
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	*ck = ^uint16(sum)
}
