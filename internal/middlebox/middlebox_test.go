package middlebox

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/netem"
	"intango/internal/packet"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

// lab builds a path with the given middlebox chain at hop 1 and records
// what reaches the server.
type lab struct {
	sim      *netem.Simulator
	path     *netem.Path
	received []*packet.Packet
}

func newLab(procs []netem.Processor) *lab {
	l := &lab{sim: netem.NewSimulator(5)}
	l.path = &netem.Path{Sim: l.sim}
	for i := 0; i < 3; i++ {
		l.path.Hops = append(l.path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	l.path.Hops[1].Processors = procs
	l.path.Server = netem.EndpointFunc(func(pkt *packet.Packet) { l.received = append(l.received, pkt) })
	l.path.Client = netem.EndpointFunc(func(pkt *packet.Packet) {})
	return l
}

func (l *lab) send(pkts ...*packet.Packet) {
	for _, p := range pkts {
		l.path.SendFromClient(p)
	}
	l.sim.Run(10000)
}

func data(flags uint8, seq packet.Seq, payload string) *packet.Packet {
	return packet.NewTCP(cliAddr, 4000, srvAddr, 80, flags, seq, 1, []byte(payload))
}

func TestFragmentDropper(t *testing.T) {
	l := newLab([]netem.Processor{FragmentDropper{}})
	p := data(packet.FlagACK, 1, "0123456789012345678901234567890123456789012345678901234567890123456789")
	frags, err := packet.Fragment(p, 60)
	if err != nil {
		t.Fatal(err)
	}
	l.send(frags...)
	if len(l.received) != 0 {
		t.Fatalf("%d fragments leaked", len(l.received))
	}
	l.send(data(packet.FlagACK, 1, "whole"))
	if len(l.received) != 1 {
		t.Fatal("whole packet should pass")
	}
}

func TestFragmentReassembler(t *testing.T) {
	l := newLab([]netem.Processor{NewFragmentReassembler()})
	payload := bytes.Repeat([]byte("x"), 100)
	p := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagACK, 1, 1, payload)
	p.IP.ID = 3
	p.Finalize()
	frags, err := packet.Fragment(p, 60)
	if err != nil || len(frags) < 2 {
		t.Fatalf("frags=%d err=%v", len(frags), err)
	}
	l.send(frags...)
	if len(l.received) != 1 {
		t.Fatalf("received %d packets, want 1 reassembled", len(l.received))
	}
	got := l.received[0]
	if got.IP.IsFragment() || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("bad reassembly: frag=%v len=%d", got.IP.IsFragment(), len(got.Payload))
	}
}

func TestChecksumValidator(t *testing.T) {
	l := newLab([]netem.Processor{ChecksumValidator{}})
	bad := data(packet.FlagACK, 1, "bad")
	bad.TCP.Checksum ^= 0xff
	good := data(packet.FlagACK, 1, "good")
	l.send(bad, good)
	if len(l.received) != 1 || string(l.received[0].Payload) != "good" {
		t.Fatalf("received %d", len(l.received))
	}
}

func TestFlaglessDropper(t *testing.T) {
	l := newLab([]netem.Processor{FlaglessDropper{}})
	l.send(data(0, 1, "flagless"), data(packet.FlagACK, 1, "flagged"))
	if len(l.received) != 1 || string(l.received[0].Payload) != "flagged" {
		t.Fatalf("received %d", len(l.received))
	}
}

func TestFlagDropperProbabilistic(t *testing.T) {
	l := newLab(nil)
	l.path.Hops[1].Processors = []netem.Processor{NewFlagDropper("fin", packet.FlagFIN, 0.5, l.sim.Rand())}
	for i := 0; i < 200; i++ {
		l.send(data(packet.FlagFIN|packet.FlagACK, packet.Seq(i), ""))
	}
	if n := len(l.received); n == 0 || n == 200 {
		t.Fatalf("passed %d/200 FINs with p=0.5", n)
	}
	// Server→client FINs are untouched (client-side boxes police
	// outbound insertion packets).
	before := len(l.received)
	l.path.SendFromServer(packet.NewTCP(srvAddr, 80, cliAddr, 4000, packet.FlagFIN|packet.FlagACK, 1, 1, nil))
	l.sim.Run(1000)
	_ = before
}

func TestStatefulFirewallKillsAfterRST(t *testing.T) {
	fw := NewStatefulFirewall("fw", false)
	l := newLab([]netem.Processor{fw})
	syn := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN, 100, 0, nil)
	l.send(syn)
	l.send(data(packet.FlagACK, 101, "fine"))
	if len(l.received) != 2 {
		t.Fatalf("pre-RST: %d", len(l.received))
	}
	rst := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagRST, 101, 0, nil)
	l.send(rst) // forwarded, but kills the state
	if !fw.ConnDead(rst.Tuple()) {
		t.Fatal("firewall state not dead after RST")
	}
	l.send(data(packet.FlagACK, 101, "blocked"))
	if len(l.received) != 3 { // syn, fine, rst — not "blocked"
		t.Fatalf("post-RST: %d packets", len(l.received))
	}
}

func TestStatefulFirewallSeqValidation(t *testing.T) {
	fw := NewStatefulFirewall("fw", true)
	l := newLab([]netem.Processor{fw})
	l.send(packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN, 100, 0, nil))
	l.path.SendFromServer(packet.NewTCP(srvAddr, 80, cliAddr, 4000, packet.FlagSYN|packet.FlagACK, 500, 101, nil))
	l.sim.Run(1000)
	l.send(data(packet.FlagACK, 101, "ok"))
	n := len(l.received)
	// Wildly out-of-window junk is dropped by the seq-checking box.
	l.send(data(packet.FlagACK, 101+1<<20, "junk"))
	if len(l.received) != n {
		t.Fatal("out-of-window packet passed a seq-validating firewall")
	}
}

func TestNATRewriteAndChecksum(t *testing.T) {
	pub := packet.AddrFrom4(59, 110, 7, 7)
	nat := NewNAT("nat", cliAddr, pub)
	l := newLab([]netem.Processor{nat})
	good := data(packet.FlagACK, 1, "hello")
	l.send(good)
	if len(l.received) != 1 {
		t.Fatal("packet lost in NAT")
	}
	got := l.received[0]
	if got.IP.Src != pub {
		t.Fatalf("src = %v, want %v", got.IP.Src, pub)
	}
	// A correct checksum stays correct after translation.
	if !got.TCP.VerifyChecksum(got.IP.Src, got.IP.Dst, got.Payload) {
		t.Fatal("NAT broke a valid checksum")
	}
	// A deliberately bad checksum stays bad (incremental update).
	bad := data(packet.FlagACK, 2, "bad")
	bad.TCP.Checksum ^= 0x1111
	l.send(bad)
	got = l.received[1]
	if got.TCP.VerifyChecksum(got.IP.Src, got.IP.Dst, got.Payload) {
		t.Fatal("NAT repaired a deliberately bad checksum")
	}
	// Reverse direction translates back.
	var atClient *packet.Packet
	l.path.Client = netem.EndpointFunc(func(pkt *packet.Packet) { atClient = pkt })
	resp := packet.NewTCP(srvAddr, 80, pub, 4000, packet.FlagACK, 9, 9, []byte("resp"))
	l.path.SendFromServer(resp)
	l.sim.Run(1000)
	if atClient == nil || atClient.IP.Dst != cliAddr {
		t.Fatalf("reverse NAT failed: %v", atClient)
	}
	if !atClient.TCP.VerifyChecksum(atClient.IP.Src, atClient.IP.Dst, atClient.Payload) {
		t.Fatal("reverse NAT broke the checksum")
	}
}

func TestBuildProfilesMatchTable2(t *testing.T) {
	sim := netem.NewSimulator(1)
	for _, p := range AllProfiles() {
		procs := BuildProfile(p, sim.Rand())
		if len(procs) == 0 {
			t.Fatalf("profile %s empty", p)
		}
	}
	if BuildProfile("nope", sim.Rand()) != nil {
		t.Fatal("unknown profile should be nil")
	}
	// Aliyun drops fragments; the others reassemble.
	aliyun := BuildProfile(ProfileAliyun, sim.Rand())
	if _, ok := aliyun[0].(FragmentDropper); !ok {
		t.Fatal("aliyun must drop fragments")
	}
	tj := BuildProfile(ProfileUnicomTJ, sim.Rand())
	foundCk := false
	for _, proc := range tj {
		if _, ok := proc.(ChecksumValidator); ok {
			foundCk = true
		}
	}
	if !foundCk {
		t.Fatal("unicom-tj must validate checksums")
	}
}

func TestProcessorNames(t *testing.T) {
	sim := netem.NewSimulator(1)
	procs := []netem.Processor{
		FragmentDropper{},
		NewFragmentReassembler(),
		ChecksumValidator{},
		FlaglessDropper{},
		NewFlagDropper("fin-dropper", packet.FlagFIN, 0.5, sim.Rand()),
		NewStatefulFirewall("fw", true),
		NewNAT("nat", cliAddr, srvAddr),
	}
	seen := map[string]bool{}
	for _, p := range procs {
		name := p.Name()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestStatefulFirewallRSTHonorProb(t *testing.T) {
	sim := netem.NewSimulator(3)
	fw := NewStatefulFirewall("fw", false)
	fw.SetRSTHonorProb(0, sim.Rand()) // never honors
	l := newLab([]netem.Processor{fw})
	l.send(packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN, 100, 0, nil))
	rst := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagRST, 101, 0, nil)
	l.send(rst)
	if fw.ConnDead(rst.Tuple()) {
		t.Fatal("probability-0 firewall honored the RST")
	}
	l.send(data(packet.FlagACK, 101, "still flows"))
	if len(l.received) != 3 {
		t.Fatalf("received %d", len(l.received))
	}
}
