// Package middlebox implements the in-path network middleboxes whose
// interference §3.4 identifies as a major cause of evasion failures:
// fragment droppers and reassemblers, checksum validators, flag-based
// droppers, stateful sequence-checking firewalls, and NAT. The four
// client-side profiles measured in Table 2 (Aliyun, QCloud, China
// Unicom Shijiazhuang and Tianjin) are provided as constructors.
package middlebox

import (
	"math/rand"

	"intango/internal/netem"
	"intango/internal/packet"
)

// FragmentDropper discards IP fragments (Aliyun, Table 2: clients were
// unable to send out IP fragments).
type FragmentDropper struct{}

// Name implements netem.Processor.
func (FragmentDropper) Name() string { return "frag-dropper" }

// Process implements netem.Processor.
func (FragmentDropper) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	if pkt.IP.IsFragment() {
		return netem.Drop
	}
	return netem.Pass
}

// FragmentReassembler buffers IP fragments and forwards the rebuilt
// datagram — the Table 2 behaviour that makes fragmented requests
// "deterministically captured by the GFW" downstream.
type FragmentReassembler struct {
	r *packet.Reassembler
}

// NewFragmentReassembler returns a reassembler middlebox. It rebuilds
// with latest-copy-wins semantics, which is what makes fragmented
// requests "deterministically captured by the GFW" downstream (§3.4):
// the reassembled datagram carries the real data, not the decoy.
func NewFragmentReassembler() *FragmentReassembler {
	return &FragmentReassembler{r: packet.NewReassembler(packet.LastWins)}
}

// Name implements netem.Processor.
func (m *FragmentReassembler) Name() string { return "frag-reassembler" }

// Process implements netem.Processor.
func (m *FragmentReassembler) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	if !pkt.IP.IsFragment() {
		return netem.Pass
	}
	// The reassembler copies everything it keeps, so the defensive clone
	// can come from the path's pool and go straight back.
	c := ctx.Pool().Clone(pkt)
	whole, err := m.r.AddAt(c, ctx.Sim.Now())
	c.Release()
	if n := m.r.TakeEvicted(); n > 0 {
		if o := ctx.Obs(); o != nil {
			o.Registry().Add("middlebox.frag-evict", n)
		}
	}
	if err != nil || whole == nil {
		return netem.Drop // buffered (or broken): the fragment itself stops here
	}
	// The rebuilt datagram descends from the fragment that completed it.
	whole.Lin = packet.Lineage{Origin: packet.OriginMiddlebox, Parent: pkt.Lin.ID}
	if o := ctx.Obs(); o != nil {
		// The rebuilt datagram is what defeats fragment-based evasion
		// downstream (§3.4) — worth a dedicated counter.
		o.Count("middlebox.frag-reassembled")
		o.TracePkt("middlebox", "frag-reassembled", pkt.Lin.ID, pkt.Lin.Parent, uint32(whole.IP.ID), 0, m.Name())
	}
	ctx.Inject(dir, whole, 0)
	return netem.Drop
}

// ChecksumValidator drops TCP packets with incorrect checksums (China
// Unicom Tianjin, Table 2).
type ChecksumValidator struct{}

// Name implements netem.Processor.
func (ChecksumValidator) Name() string { return "checksum-validator" }

// Process implements netem.Processor.
func (ChecksumValidator) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	if pkt.TCP != nil && !pkt.TCP.VerifyChecksum(pkt.IP.Src, pkt.IP.Dst, pkt.Payload) {
		return netem.Drop
	}
	return netem.Pass
}

// FlaglessDropper drops TCP packets with no flags set (China Unicom
// Tianjin, Table 2).
type FlaglessDropper struct{}

// Name implements netem.Processor.
func (FlaglessDropper) Name() string { return "flagless-dropper" }

// Process implements netem.Processor.
func (FlaglessDropper) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	if pkt.TCP != nil && pkt.TCP.Flags == 0 {
		return netem.Drop
	}
	return netem.Pass
}

// FlagDropper drops client-originated TCP packets carrying the given
// flag with some probability — the "sometimes drops FIN/RST insertion
// packets" rows of Table 2.
type FlagDropper struct {
	Flag uint8
	Prob float64
	rng  *rand.Rand
	name string
}

// NewFlagDropper builds a dropper for flag with drop probability p.
func NewFlagDropper(name string, flag uint8, p float64, rng *rand.Rand) *FlagDropper {
	return &FlagDropper{Flag: flag, Prob: p, rng: rng, name: name}
}

// Name implements netem.Processor.
func (m *FlagDropper) Name() string { return m.name }

// Process implements netem.Processor.
func (m *FlagDropper) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	if dir == netem.ToServer && pkt.TCP != nil && pkt.TCP.HasFlag(m.Flag) && m.rng.Float64() < m.Prob {
		return netem.Drop
	}
	return netem.Pass
}
