package middlebox

import (
	"math/rand"

	"intango/internal/netem"
	"intango/internal/packet"
)

// ProfileName identifies one of the four client-side middlebox
// behaviours measured in Table 2.
type ProfileName string

// The Table 2 profiles.
const (
	ProfileAliyun    ProfileName = "aliyun"
	ProfileQCloud    ProfileName = "qcloud"
	ProfileUnicomSJZ ProfileName = "unicom-sjz"
	ProfileUnicomTJ  ProfileName = "unicom-tj"
)

// AllProfiles lists the Table 2 profiles with the share of vantage
// points using each (6/11, 3/11, 1/11, 1/11).
func AllProfiles() []ProfileName {
	return []ProfileName{ProfileAliyun, ProfileQCloud, ProfileUnicomSJZ, ProfileUnicomTJ}
}

// sometimesProb is the drop probability backing Table 2's "sometimes
// dropped" cells.
const sometimesProb = 0.4

// BuildProfile returns the client-side middlebox chain for a profile,
// exactly per Table 2:
//
//	                 Aliyun      QCloud      Unicom SJZ  Unicom TJ
//	IP fragments     discarded   reassembled reassembled reassembled
//	wrong checksum   pass        pass        pass        dropped
//	no TCP flag      pass        pass        pass        dropped
//	RST packets      pass        sometimes   pass        pass
//	FIN packets      sometimes   pass        dropped     dropped
func BuildProfile(p ProfileName, rng *rand.Rand) []netem.Processor {
	switch p {
	case ProfileAliyun:
		return []netem.Processor{
			FragmentDropper{},
			NewFlagDropper("fin-dropper", packet.FlagFIN, sometimesProb, rng),
		}
	case ProfileQCloud:
		return []netem.Processor{
			NewFragmentReassembler(),
			NewFlagDropper("rst-dropper", packet.FlagRST, sometimesProb, rng),
		}
	case ProfileUnicomSJZ:
		return []netem.Processor{
			NewFragmentReassembler(),
			NewFlagDropper("fin-dropper", packet.FlagFIN, 1.0, rng),
		}
	case ProfileUnicomTJ:
		return []netem.Processor{
			NewFragmentReassembler(),
			ChecksumValidator{},
			FlaglessDropper{},
			NewFlagDropper("fin-dropper", packet.FlagFIN, 1.0, rng),
		}
	default:
		return nil
	}
}
