package obs

import (
	"fmt"
	"time"
)

// DefaultRingSize is the flight-recorder capacity used when none is
// configured: large enough to hold a whole quick-scale trial, small
// enough that a per-trial allocation is negligible.
const DefaultRingSize = 512

// Event is one structured flight-recorder entry. T is virtual
// simulation time, so traces are reproducible bit-for-bit; Seq and
// Flags carry the TCP view where the subsystem has one. Pkt and Parent
// carry the causal-tracing lineage: the wire ID of the packet the
// event concerns and of the packet that caused it (zero when the
// emitting subsystem has no lineage to report). The struct stays
// comparable — firstDivergence and the determinism tests rely on ==.
type Event struct {
	T      time.Duration `json:"t"`
	Subsys string        `json:"subsys"`
	Verb   string        `json:"verb"`
	Seq    uint32        `json:"seq,omitempty"`
	Flags  uint8         `json:"flags,omitempty"`
	Pkt    uint32        `json:"pkt,omitempty"`
	Parent uint32        `json:"parent,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// String renders the event as one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("%9.3fms %-8s %-26s", float64(e.T)/float64(time.Millisecond), e.Subsys, e.Verb)
	if e.Seq != 0 || e.Flags != 0 {
		s += fmt.Sprintf(" seq=%d flags=%#02x", e.Seq, e.Flags)
	}
	switch {
	case e.Pkt != 0 && e.Parent != 0:
		s += fmt.Sprintf(" pkt=#%d<-#%d", e.Pkt, e.Parent)
	case e.Pkt != 0:
		s += fmt.Sprintf(" pkt=#%d", e.Pkt)
	case e.Parent != 0:
		s += fmt.Sprintf(" cause=#%d", e.Parent)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// EventSink receives every event a Recorder records, including events
// the bounded ring later evicts. The causal tracer taps a per-trial
// recorder this way to retain the complete stream while the ring stays
// fixed-size.
type EventSink interface {
	RecordEvent(Event)
}

// Span is one named virtual-time interval — a trial stage (topology
// build, handshake, strategy application, censor verdict, teardown)
// bracketed by its begin and end on the simulation clock. Because both
// ends are virtual timestamps, spans are bit-identical across serial
// and parallel runs of the same seed.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// Dur returns the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Recorder is a bounded ring buffer of trace events — the flight
// recorder — plus the trial's stage spans. The buffer grows lazily up
// to its capacity (quiet trials never pay for the full ring); once
// full it overwrites the oldest entry, so a snapshot always holds the
// most recent window leading up to the outcome being explained. Spans
// are few (a handful per trial) and stored unbounded outside the ring,
// so recording one never evicts an event. A nil Recorder is a valid
// disabled recorder: Record and AddSpan on it cost one branch.
type Recorder struct {
	now   func() time.Duration
	size  int
	buf   []Event
	next  int
	total uint64
	sink  EventSink
	spans []Span
}

// NewRecorder builds a recorder holding up to size events, stamping
// them with the virtual clock now. A non-positive size selects
// DefaultRingSize; a nil clock stamps zero.
func NewRecorder(size int, now func() time.Duration) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Recorder{now: now, size: size}
}

// Tap installs a sink that receives every subsequently recorded event
// before any ring eviction. Safe on a nil receiver (no-op).
func (r *Recorder) Tap(s EventSink) {
	if r == nil {
		return
	}
	r.sink = s
}

// Record appends one event, evicting the oldest when full. Safe on a
// nil receiver (the disabled no-op path).
func (r *Recorder) Record(subsys, verb string, seq uint32, flags uint8, detail string) {
	r.RecordPkt(subsys, verb, 0, 0, seq, flags, detail)
}

// RecordPkt is Record with the causal-tracing lineage attached: pkt is
// the wire ID of the packet the event concerns, parent the ID of the
// packet that caused it (either may be zero). Safe on a nil receiver.
func (r *Recorder) RecordPkt(subsys, verb string, pkt, parent uint32, seq uint32, flags uint8, detail string) {
	if r == nil {
		return
	}
	e := Event{T: r.now(), Subsys: subsys, Verb: verb, Seq: seq, Flags: flags, Pkt: pkt, Parent: parent, Detail: detail}
	if r.sink != nil {
		r.sink.RecordEvent(e)
	}
	if len(r.buf) < r.size {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next++
		if r.next == r.size {
			r.next = 0
		}
	}
	r.total++
}

// Now returns the recorder's current virtual time — the begin stamp
// for a span the caller will later close with AddSpan. Safe on a nil
// receiver (returns 0).
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.now()
}

// AddSpan records one named virtual-time interval. An end before start
// is clamped to a zero-width span rather than recording a negative
// duration. Safe on a nil receiver.
func (r *Recorder) AddSpan(name string, start, end time.Duration) {
	if r == nil {
		return
	}
	if end < start {
		end = start
	}
	r.spans = append(r.spans, Span{Name: name, Start: start, End: end})
}

// Spans returns the recorded stage spans in recording order, as a copy
// safe to hold after the trial ends. Safe on a nil receiver.
func (r *Recorder) Spans() []Span {
	if r == nil || len(r.spans) == 0 {
		return nil
	}
	return append([]Span(nil), r.spans...)
}

// Total returns how many events were ever recorded, including evicted
// ones. Safe on a nil receiver.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many events the ring evicted.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	kept := uint64(len(r.buf))
	if r.total <= kept {
		return 0
	}
	return r.total - kept
}

// Events returns the retained events in chronological order (oldest
// first), as a copy safe to hold after the trial ends. Safe on a nil
// receiver.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.total <= uint64(len(r.buf)) {
		return append([]Event(nil), r.buf[:r.total]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
