package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is one named atomic counter. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a set of named atomic metrics: counters, gauges, and
// fixed-bucket histograms. Registration (the first use of a name)
// takes the write lock; subsequent updates take a read lock plus an
// atomic operation, so metric updates are contention-free for a stable
// key set. For fully lock-free hot paths, shard: give each worker its
// own Registry and Merge them after the workers join — counter and
// gauge merges are addition and histogram merges are bucket-wise
// addition, all commutative, so any merge order produces identical
// totals.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use. It
// returns nil on a nil registry (and Counter methods accept nil), so a
// cached handle can be taken unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add adds n to the named counter. Safe on a nil receiver.
func (r *Registry) Add(name string, n uint64) {
	if r == nil || n == 0 {
		return
	}
	r.Counter(name).Add(n)
}

// Inc increments the named counter by one. Safe on a nil receiver.
func (r *Registry) Inc(name string) {
	if r == nil {
		return
	}
	r.Counter(name).Add(1)
}

// Value returns the named counter's current count (0 if never used).
func (r *Registry) Value(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	return c.Value()
}

// Gauge returns the named gauge, registering it on first use. It
// returns nil on a nil registry (and Gauge methods accept nil).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// SetGauge sets the named gauge. Safe on a nil receiver.
func (r *Registry) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.Gauge(name).Set(v)
}

// Histogram returns the named histogram, registering it with the given
// bucket bounds on first use. Later calls return the existing
// histogram regardless of bounds — the first registration pins the
// bucket layout, which is what keeps shard merges bucket-aligned.
// Returns nil on a nil registry (and Histogram methods accept nil).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Observe records one value into the named histogram (registering it
// with bounds on first use). Safe on a nil receiver.
func (r *Registry) Observe(name string, bounds []uint64, v uint64) {
	if r == nil {
		return
	}
	r.Histogram(name, bounds).Observe(v)
}

// Merge adds every metric of other into r: counters and gauges by
// addition, histograms bucket-wise. Merging is associative and
// commutative, so per-worker shards can be folded in any order with
// bit-identical results. Safe when either registry is nil.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	for name, c := range other.counters {
		r.Add(name, c.Value())
	}
	for name, g := range other.gauges {
		r.Gauge(name).Add(g.Value())
	}
	for name, h := range other.hists {
		r.Histogram(name, h.bounds).Merge(h)
	}
}

// Snapshot captures all non-zero counters and gauges and all non-empty
// histograms at a point in time.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64)}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		if v := c.Value(); v > 0 {
			s.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		if v := g.Value(); v != 0 {
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[name] = v
		}
	}
	for name, h := range r.hists {
		if h.Count() > 0 {
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}
