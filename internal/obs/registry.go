package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is one named atomic counter. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a set of named atomic counters. Registration (the first
// Add of a name) takes the write lock; subsequent Adds take a read
// lock plus an atomic increment, so counting is contention-free for a
// stable key set. For fully lock-free hot paths, shard: give each
// worker its own Registry and Merge them after the workers join —
// addition commutes, so any merge order produces identical totals.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the named counter, registering it on first use. It
// returns nil on a nil registry (and Counter methods accept nil), so a
// cached handle can be taken unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add adds n to the named counter. Safe on a nil receiver.
func (r *Registry) Add(name string, n uint64) {
	if r == nil || n == 0 {
		return
	}
	r.Counter(name).Add(n)
}

// Inc increments the named counter by one. Safe on a nil receiver.
func (r *Registry) Inc(name string) {
	if r == nil {
		return
	}
	r.Counter(name).Add(1)
}

// Value returns the named counter's current count (0 if never used).
func (r *Registry) Value(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	return c.Value()
}

// Merge adds every counter of other into r. Merging is associative and
// commutative, so per-worker shards can be folded in any order with
// bit-identical results. Safe when either registry is nil.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	for name, c := range other.counters {
		r.Add(name, c.Value())
	}
}

// Snapshot captures all non-zero counters at a point in time.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64)}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		if v := c.Value(); v > 0 {
			s.Counters[name] = v
		}
	}
	return s
}
