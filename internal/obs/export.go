package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a registry's metrics — counters,
// gauges, and histograms — ready for text, JSON, or Prometheus export.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Keys returns the counter names in sorted order.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedKeys returns the keys of any metric map in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the snapshot as aligned "name value" lines —
// counters first, then gauges, then histogram summaries — sorted by
// name so output is diff-stable.
func (s Snapshot) WriteText(w io.Writer) error {
	keys := s.Keys()
	width := 0
	for _, k := range keys {
		if len(k) > width {
			width = len(k)
		}
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%-*s %d\n", width, k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s (gauge) %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "%s (hist) count=%d mean=%.3fms p50=%.0fms p99=%.0fms\n",
			k, h.Count, h.Mean()/float64(time.Millisecond),
			float64(h.Quantile(0.50))/float64(time.Millisecond),
			float64(h.Quantile(0.99))/float64(time.Millisecond)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON (keys sorted, per
// encoding/json map semantics), followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// FormatEvents renders a flight-recorder trace, one event per line.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Aggregate is the per-campaign summary appended to table output:
// throughput plus the distribution of flight-recorder activity.
type Aggregate struct {
	Trials            int           `json:"trials"`
	TotalEvents       uint64        `json:"total_events"`
	Wall              time.Duration `json:"wall_ns"`
	TrialsPerSec      float64       `json:"trials_per_sec"`
	EventsPerTrialP50 int           `json:"events_per_trial_p50"`
	EventsPerTrialP99 int           `json:"events_per_trial_p99"`
}

// String renders the aggregate as one summary line.
func (a Aggregate) String() string {
	return fmt.Sprintf("trials=%d trace-events=%d wall=%v trials/sec=%.1f events/trial p50=%d p99=%d",
		a.Trials, a.TotalEvents, a.Wall.Round(time.Millisecond), a.TrialsPerSec,
		a.EventsPerTrialP50, a.EventsPerTrialP99)
}

// Percentile returns the nearest-rank p-th percentile of sorted (an
// ascending-sorted slice); 0 when empty.
func Percentile(sorted []int, p float64) int {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
