package obs

import (
	"encoding/json"
	"reflect"
	"testing"
)

// populate fills a registry with a representative metric mix: counters,
// gauges, and histograms with values in every bucket region including
// overflow.
func populate(r *Registry, scale uint64) {
	r.Add("netem.events", 100*scale)
	r.Add("trials.total", 7*scale)
	r.Add("gfw.inject-type1", 3*scale)
	r.Gauge("pool.level").Add(int64(5 * scale))
	h := r.Histogram("span.handshake", DefaultDurationBuckets)
	for i := uint64(0); i < scale; i++ {
		h.Observe(1_000_000)           // first bucket
		h.Observe(450_000_000)         // mid bucket
		h.Observe(999_000_000_000_000) // overflow
	}
	g := r.Histogram("goodput.bps", GoodputBuckets)
	g.Observe(20_000 * scale)
}

// TestSnapshotEncodeDecodeMergeRoundTrip is the checkpoint/resume
// load-bearing invariant: a snapshot that goes through the JSON codec
// and is folded into a fresh registry with MergeSnapshot reproduces the
// original registry bit-for-bit.
func TestSnapshotEncodeDecodeMergeRoundTrip(t *testing.T) {
	src := NewRegistry()
	populate(src, 3)
	want := src.Snapshot()

	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}

	dst := NewRegistry()
	dst.MergeSnapshot(decoded)
	if got := dst.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("encode→decode→Merge round trip diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestMergeSnapshotEquivalentToMerge: folding a snapshot must be
// indistinguishable from merging the live registry it was captured
// from, and the fold must be order-independent.
func TestMergeSnapshotEquivalentToMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	populate(a, 2)
	populate(b, 5)
	b.Add("censor.detect-keyword", 11) // a key only one side has

	// Live merge: a + b.
	live := NewRegistry()
	live.Merge(a)
	live.Merge(b)

	// Snapshot merge, both orders.
	viaSnap := NewRegistry()
	viaSnap.MergeSnapshot(a.Snapshot())
	viaSnap.MergeSnapshot(b.Snapshot())
	viaSnapRev := NewRegistry()
	viaSnapRev.MergeSnapshot(b.Snapshot())
	viaSnapRev.MergeSnapshot(a.Snapshot())

	want := live.Snapshot()
	if got := viaSnap.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot merge != live merge:\ngot:  %+v\nwant: %+v", got, want)
	}
	if got := viaSnapRev.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot merge is order-dependent:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestMergeSnapshotResumeShape mirrors the resume path: a registry that
// observed trials 0..k, was snapshotted, and then a fresh registry that
// replays the snapshot and observes trials k..n must equal a registry
// that observed all n trials directly.
func TestMergeSnapshotResumeShape(t *testing.T) {
	observe := func(r *Registry, trial int) {
		r.Inc("trials.total")
		r.Add("netem.events", uint64(10+trial))
		r.Histogram("span.handshake", DefaultDurationBuckets).Observe(uint64(trial+1) * 1_500_000)
	}

	full := NewRegistry()
	for i := 0; i < 10; i++ {
		observe(full, i)
	}

	first := NewRegistry()
	for i := 0; i < 4; i++ {
		observe(first, i)
	}
	frame, err := json.Marshal(first.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	resumed := NewRegistry()
	resumed.MergeSnapshot(decoded)
	for i := 4; i < 10; i++ {
		observe(resumed, i)
	}

	if got, want := resumed.Snapshot(), full.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed registry diverged from uninterrupted run:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestAddSnapshotShapeMismatch: a snapshot with more buckets than the
// live histogram folds the surplus into the overflow bucket instead of
// panicking.
func TestAddSnapshotShapeMismatch(t *testing.T) {
	h := NewHistogram([]uint64{10, 20})
	h.AddSnapshot(HistogramSnapshot{
		Bounds: []uint64{10, 20, 30, 40},
		Counts: []uint64{1, 2, 3, 4, 5},
		Sum:    100, Count: 15,
	})
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 2 || s.Counts[2] != 12 {
		t.Errorf("mismatched fold = %v, want [1 2 12]", s.Counts)
	}
	if s.Count != 15 || s.Sum != 100 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
}
