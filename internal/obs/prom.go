package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus exposition helpers. The repo's counter names use dots and
// dashes ("netem.drop-loss"), which are illegal in Prometheus metric
// names, and strategy labels carry raw spec text (backslashes, quotes,
// arbitrary UTF-8), which must be escaped per the exposition format —
// %q Go-quoting is close but not identical (it escapes non-ASCII,
// which Prometheus forbids changing), so scrapers choke on it.

// PromName sanitizes s into a legal Prometheus metric name: every rune
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_'
// prefix.
func PromName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, r := range s {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if legal {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromLabel escapes s for use inside a label value's double quotes:
// backslash, double quote, and newline get backslash escapes; every
// other byte — including non-ASCII UTF-8 — passes through verbatim, as
// the exposition format requires.
func PromLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// promFamily writes one metric family header.
func promFamily(w io.Writer, name, typ, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// WriteProm renders the snapshot in Prometheus exposition format:
// counters as "<prefix><name>_total", gauges as "<prefix><name>", and
// histograms as cumulative "_bucket"/"_sum"/"_count" families, names
// sanitized through PromName and sorted so output is diff-stable.
func (s Snapshot) WriteProm(w io.Writer, prefix string) error {
	for _, k := range s.Keys() {
		name := PromName(prefix+k) + "_total"
		if err := promFamily(w, name, "counter", "Counter "+k+"."); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := PromName(prefix + k)
		if err := promFamily(w, name, "gauge", "Gauge "+k+"."); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		name := PromName(prefix + k)
		if err := promFamily(w, name, "histogram", "Histogram "+k+"."); err != nil {
			return err
		}
		var cum uint64
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
