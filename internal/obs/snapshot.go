package obs

// Snapshot re-ingestion: the checkpoint/resume machinery journals a
// registry as its JSON Snapshot and later folds the decoded snapshot
// back into a live registry. Because counter and gauge merges are
// addition and histogram merges are bucket-wise integer addition —
// exactly the Registry.Merge contract — a registry rebuilt from a
// snapshot plus the metrics of the remaining trials is bit-identical
// to one that observed every trial directly, in any fold order. That
// commutativity is the invariant that makes a killed sharded campaign
// resumable with byte-identical merged results.

// AddSnapshot folds a decoded histogram snapshot into h bucket-wise,
// exactly as Merge does for a live histogram: counts land in the
// matching bucket (extra trailing buckets collapse into the overflow
// bucket rather than corrupting memory), and sum/count add. Safe on a
// nil receiver.
func (h *Histogram) AddSnapshot(s HistogramSnapshot) {
	if h == nil {
		return
	}
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		j := i
		if j >= len(h.counts) {
			j = len(h.counts) - 1
		}
		h.counts[j].Add(n)
	}
	h.sum.Add(s.Sum)
	h.total.Add(s.Count)
}

// MergeSnapshot folds a decoded snapshot into r: counters and gauges by
// addition, histograms bucket-wise (registering each histogram with the
// snapshot's own bounds on first use, so a registry rebuilt purely from
// journaled frames keeps the original bucket layout). MergeSnapshot(s)
// is equivalent to Merge(r2) where r2 is the registry s was captured
// from — associative and commutative, so checkpoint frames can be
// replayed in any order with bit-identical totals. Safe on a nil
// receiver.
func (r *Registry) MergeSnapshot(s Snapshot) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.Add(name, v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Add(v)
	}
	for name, hs := range s.Histograms {
		r.Histogram(name, hs.Bounds).AddSnapshot(hs)
	}
}
