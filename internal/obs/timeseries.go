package obs

import "sync"

// DefaultSeriesCap bounds a TimeSeries when no capacity is configured:
// enough for a multi-hour campaign at one-second sampling without
// unbounded growth.
const DefaultSeriesCap = 1024

// SeriesPoint is one sample of a running campaign: wall-clock seconds
// since the series started plus a flat name→value map. Wall time is
// deliberately confined to this type — everything inside a trial is
// stamped with virtual time, and only the sampler (which observes, and
// never steers, the campaign) may look at the real clock.
type SeriesPoint struct {
	T      float64            `json:"t"` // seconds since series start
	Values map[string]float64 `json:"values"`
}

// TimeSeries is a bounded, concurrency-safe ring of samples. When full
// it drops the oldest point (counting drops), so a snapshot always
// holds the most recent window. The sampler side takes a mutex; the
// trial hot path never touches a TimeSeries.
type TimeSeries struct {
	mu      sync.Mutex
	max     int
	pts     []SeriesPoint
	dropped uint64
}

// NewTimeSeries returns an empty series holding up to max points; a
// non-positive max selects DefaultSeriesCap.
func NewTimeSeries(max int) *TimeSeries {
	if max <= 0 {
		max = DefaultSeriesCap
	}
	return &TimeSeries{max: max}
}

// Append adds one sample, evicting the oldest when full. Safe on a nil
// receiver.
func (s *TimeSeries) Append(p SeriesPoint) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pts) >= s.max {
		n := copy(s.pts, s.pts[1:])
		s.pts = s.pts[:n]
		s.dropped++
	}
	s.pts = append(s.pts, p)
}

// Len returns the number of retained samples. Safe on a nil receiver.
func (s *TimeSeries) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pts)
}

// Snapshot copies the retained window. Safe on a nil receiver.
func (s *TimeSeries) Snapshot() TimeSeriesSnapshot {
	if s == nil {
		return TimeSeriesSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return TimeSeriesSnapshot{
		Points:  append([]SeriesPoint(nil), s.pts...),
		Dropped: s.dropped,
	}
}

// TimeSeriesSnapshot is a point-in-time copy of a series — the payload
// of the /timeseries endpoint and the health report's throughput
// curve.
type TimeSeriesSnapshot struct {
	Points []SeriesPoint `json:"points"`
	// Dropped counts ring-evicted samples preceding Points.
	Dropped uint64 `json:"dropped,omitempty"`
}

// Last returns the most recent sample (zero value when empty).
func (s TimeSeriesSnapshot) Last() SeriesPoint {
	if len(s.Points) == 0 {
		return SeriesPoint{}
	}
	return s.Points[len(s.Points)-1]
}
