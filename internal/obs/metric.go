package obs

import (
	"sync/atomic"
	"time"
)

// Gauge is one named atomic level — a value that can move both ways,
// unlike the monotonic Counter. The zero value is ready to use. Shards
// merge gauges by addition (each worker reports its share of the
// level), which keeps Registry.Merge commutative: any merge order
// produces identical totals.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease). Safe on a nil
// receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level. Safe on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultDurationBuckets are the fixed histogram bounds used for
// virtual-time span durations, in nanoseconds: 1 ms to 10 s roughly
// log-spaced, bracketing everything a trial's 8.5 s virtual window can
// produce. Values above the last bound land in the overflow bucket.
var DefaultDurationBuckets = []uint64{
	uint64(1 * time.Millisecond),
	uint64(2 * time.Millisecond),
	uint64(5 * time.Millisecond),
	uint64(10 * time.Millisecond),
	uint64(20 * time.Millisecond),
	uint64(50 * time.Millisecond),
	uint64(100 * time.Millisecond),
	uint64(200 * time.Millisecond),
	uint64(500 * time.Millisecond),
	uint64(1 * time.Second),
	uint64(2 * time.Second),
	uint64(5 * time.Second),
	uint64(10 * time.Second),
}

// GoodputBuckets are the fixed histogram bounds for per-trial goodput
// observations, in bits per second of virtual time: 16 kbit/s to
// 128 mbit/s log-spaced, bracketing everything from a saturated
// 1 mbit constrained uplink down to a duplicate-heavy strategy
// wasting most of it.
var GoodputBuckets = []uint64{
	16_000, 32_000, 64_000, 125_000, 250_000, 500_000,
	1_000_000, 2_000_000, 4_000_000, 8_000_000,
	16_000_000, 32_000_000, 64_000_000, 128_000_000,
}

// TransferBuckets are the fixed histogram bounds for per-trial
// delivered-byte counts: 1 KiB to 1 MiB in powers of two.
var TransferBuckets = []uint64{
	1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10,
	64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20,
}

// Histogram is a fixed-bucket distribution: bounds are inclusive upper
// limits chosen at registration and never change, so per-worker shards
// always share a bucket layout and merging is bucket-wise addition —
// associative, commutative, and (because counts and sums are integers)
// bit-identical in any merge order. Observation is a linear scan over a
// small bounds slice plus one atomic increment: lock-free and
// allocation-free.
type Histogram struct {
	bounds []uint64        // ascending inclusive upper bounds
	counts []atomic.Uint64 // len(bounds)+1; the last is the overflow bucket
	sum    atomic.Uint64
	total  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending bounds. The
// slice is not copied; callers must not mutate it (package-level bucket
// vars like DefaultDurationBuckets are the intended source).
func NewHistogram(bounds []uint64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns how many values were observed. Safe on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Merge folds other's buckets into h bucket-wise. Both sides of a
// merge come from the same registration site and therefore share
// bounds; a shape mismatch (possible only through direct construction)
// folds what aligns and drops the rest into the overflow bucket rather
// than corrupting memory. Safe when either histogram is nil.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		n := other.counts[i].Load()
		if n == 0 {
			continue
		}
		j := i
		if j >= len(h.counts) {
			j = len(h.counts) - 1
		}
		h.counts[j].Add(n)
	}
	h.sum.Add(other.sum.Load())
	h.total.Add(other.total.Load())
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, ready for
// export and quantile estimation.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket limits; Counts has one
	// extra trailing entry for values above the last bound.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Quantile returns the upper bound of the bucket holding the q-th
// quantile (0 < q <= 1) by nearest rank — an upper estimate with
// bucket-width resolution. The overflow bucket reports the last bound
// (the histogram cannot see past it). Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, n := range s.Counts {
		seen += n
		if seen >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the arithmetic mean of the observed values (0 when
// empty). Unlike Quantile it is exact: the sum is tracked outside the
// buckets.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
