// Package obs is the unified observability layer for the simulation
// stack: named counters aggregated across trials, and a fixed-size
// per-trial "flight recorder" of structured trace events that turns a
// bare Success/Failure-1/Failure-2 outcome into a causal event log —
// the instrumentation the paper's §3.4/§8 failure-attribution
// methodology needs.
//
// Design constraints, in order:
//
//   - Disabled must be free. Every subsystem holds a nil *Obs by
//     default; all methods are nil-receiver safe, so the disabled hot
//     path costs one branch and zero allocations. Callers that build
//     detail strings guard with an explicit nil check first.
//   - Deterministic. Trace timestamps are virtual (the simulation
//     clock), never wall time, so traces are bit-identical across
//     serial and parallel runs of the same seed. Counters are plain
//     additions, so any merge order yields the same totals.
//   - No contention. Counters are atomic, and the experiment runner
//     shards one Registry per worker, merging after the barrier —
//     instrumentation never adds a lock to the trial hot path.
//
// The package depends only on the standard library.
package obs

// Obs bundles the two halves of per-trial observability: a Registry of
// counters and a flight-recorder Recorder. Subsystems hold a *Obs that
// is nil when observability is disabled.
type Obs struct {
	reg *Registry
	rec *Recorder
}

// New bundles a registry and recorder. Either may be nil to enable only
// half of the instrumentation.
func New(reg *Registry, rec *Recorder) *Obs {
	return &Obs{reg: reg, rec: rec}
}

// Registry returns the counter registry (nil when disabled).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Recorder returns the flight recorder (nil when disabled).
func (o *Obs) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// Count increments the named counter by one. Safe on a nil receiver.
func (o *Obs) Count(name string) {
	if o == nil {
		return
	}
	o.reg.Add(name, 1)
}

// CountN adds n to the named counter. Safe on a nil receiver.
func (o *Obs) CountN(name string, n uint64) {
	if o == nil {
		return
	}
	o.reg.Add(name, n)
}

// Trace records one flight-recorder event. Safe on a nil receiver.
func (o *Obs) Trace(subsys, verb string, seq uint32, flags uint8, detail string) {
	if o == nil {
		return
	}
	o.rec.Record(subsys, verb, seq, flags, detail)
}

// TracePkt records one flight-recorder event keyed to the causal
// lineage: pkt is the wire ID of the packet the event concerns, parent
// the ID of the packet that caused it. Safe on a nil receiver.
func (o *Obs) TracePkt(subsys, verb string, pkt, parent uint32, seq uint32, flags uint8, detail string) {
	if o == nil {
		return
	}
	o.rec.RecordPkt(subsys, verb, pkt, parent, seq, flags, detail)
}
