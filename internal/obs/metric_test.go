package obs

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pool.live")
	g.Set(7)
	g.Add(-3)
	if got := r.Gauge("pool.live").Value(); got != 4 {
		t.Fatalf("gauge = %d", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge not inert")
	}
	snap := r.Snapshot()
	if snap.Gauges["pool.live"] != 4 {
		t.Fatalf("snapshot gauges = %+v", snap.Gauges)
	}
}

func TestGaugeMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.SetGauge("x", 3)
	b.SetGauge("x", 4)
	b.SetGauge("y", -1)
	a.Merge(b)
	s := a.Snapshot()
	if s.Gauges["x"] != 7 || s.Gauges["y"] != -1 {
		t.Fatalf("merged gauges = %+v", s.Gauges)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]uint64{10, 20, 30})
	for _, v := range []uint64{5, 10, 11, 29, 31, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Buckets: <=10, <=20, <=30, overflow.
	want := []uint64{2, 1, 1, 2}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 6 || s.Sum != 5+10+11+29+31+1000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 {
		t.Fatal("nil histogram not inert")
	}
}

func TestHistogramMergeCommutative(t *testing.T) {
	mk := func(vals ...uint64) *Histogram {
		h := NewHistogram(DefaultDurationBuckets)
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	a1, b1 := mk(1, 500, 1e9), mk(2e6, 7e9, 100e9)
	a2, b2 := mk(1, 500, 1e9), mk(2e6, 7e9, 100e9)
	a1.Merge(b1)
	b2.Merge(a2)
	if !reflect.DeepEqual(a1.Snapshot(), b2.Snapshot()) {
		t.Fatalf("merge not commutative:\n%+v\n%+v", a1.Snapshot(), b2.Snapshot())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]uint64{10, 20, 40})
	for i := 0; i < 50; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 40; i++ {
		h.Observe(15) // second bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(999) // overflow
	}
	s := h.Snapshot()
	if q := s.Quantile(0.50); q != 10 {
		t.Fatalf("p50 = %d, want 10", q)
	}
	if q := s.Quantile(0.90); q != 20 {
		t.Fatalf("p90 = %d, want 20", q)
	}
	// Overflow observations report the last finite bound.
	if q := s.Quantile(0.999); q != 40 {
		t.Fatalf("p99.9 = %d, want 40", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
}

func TestRegistryHistogramPinsBounds(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("lat", []uint64{1, 2})
	h2 := r.Histogram("lat", []uint64{9, 9, 9}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	h1.Observe(1)
	if got := r.Snapshot().Histograms["lat"].Bounds; !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("bounds = %v", got)
	}
}

func TestRegistryMergeHistograms(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Observe("lat", DefaultDurationBuckets, uint64(time.Millisecond))
	b.Observe("lat", DefaultDurationBuckets, uint64(time.Second))
	b.Observe("other", DefaultDurationBuckets, 1)
	a.Merge(b)
	s := a.Snapshot()
	if s.Histograms["lat"].Count != 2 || s.Histograms["other"].Count != 1 {
		t.Fatalf("merged histograms = %+v", s.Histograms)
	}
}

func TestTimeSeriesRing(t *testing.T) {
	s := NewTimeSeries(3)
	for i := 0; i < 5; i++ {
		s.Append(SeriesPoint{T: float64(i)})
	}
	snap := s.Snapshot()
	if len(snap.Points) != 3 || snap.Dropped != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Points[0].T != 2 || snap.Last().T != 4 {
		t.Fatalf("window = %+v", snap.Points)
	}
	var nilS *TimeSeries
	nilS.Append(SeriesPoint{})
	if nilS.Len() != 0 || len(nilS.Snapshot().Points) != 0 {
		t.Fatal("nil series not inert")
	}
}

func TestRecorderSpans(t *testing.T) {
	now := time.Duration(0)
	rec := NewRecorder(4, func() time.Duration { return now })
	rec.Record("x", "a", 0, 0, "")
	total := rec.Total()
	rec.AddSpan("handshake", 0, 50*time.Millisecond)
	rec.AddSpan("backwards", 10, 5) // clamped to zero width
	if rec.Total() != total {
		t.Fatal("AddSpan perturbed the event total")
	}
	spans := rec.Spans()
	if len(spans) != 2 || spans[0].Dur() != 50*time.Millisecond {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[1].Dur() != 0 {
		t.Fatalf("backwards span not clamped: %+v", spans[1])
	}
	now = 7
	if rec.Now() != 7 {
		t.Fatalf("Now = %v", rec.Now())
	}
	var nilR *Recorder
	nilR.AddSpan("x", 0, 1)
	if nilR.Spans() != nil || nilR.Now() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"netem.drop-loss": "netem_drop_loss",
		"gfw.frag-evict":  "gfw_frag_evict",
		"ok_name:x":       "ok_name:x",
		"9lives":          "_9lives",
		"":                "_",
		"π":               "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromLabel(t *testing.T) {
	cases := map[string]string{
		`plain`:        `plain`,
		`q"uote`:       `q\"uote`,
		`back\slash`:   `back\\slash`,
		"new\nline":    `new\nline`,
		"π non-ascii✓": "π non-ascii✓", // must pass through unescaped
	}
	for in, want := range cases {
		if got := PromLabel(in); got != want {
			t.Fatalf("PromLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Add("netem.send", 3)
	r.SetGauge("pool.live", 5)
	h := r.Histogram("span.handshake", []uint64{10, 20})
	h.Observe(5)
	h.Observe(25)
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b, "intango_"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE intango_netem_send_total counter",
		"intango_netem_send_total 3",
		"# TYPE intango_pool_live gauge",
		"intango_pool_live 5",
		"# TYPE intango_span_handshake histogram",
		`intango_span_handshake_bucket{le="10"} 1`,
		`intango_span_handshake_bucket{le="20"} 1`,
		`intango_span_handshake_bucket{le="+Inf"} 2`,
		"intango_span_handshake_sum 30",
		"intango_span_handshake_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteProm missing %q:\n%s", want, out)
		}
	}
}
