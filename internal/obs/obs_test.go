package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// op is one counter contribution; quick generates random batches.
type op struct {
	Key uint8
	N   uint16
}

func registryFrom(ops []op) *Registry {
	r := NewRegistry()
	for _, o := range ops {
		r.Add("k"+string(rune('a'+o.Key%8)), uint64(o.N))
	}
	return r
}

// TestMergeAssociative checks the property the sharded-parallel runner
// depends on: folding per-worker registries in any grouping yields the
// same totals.
func TestMergeAssociative(t *testing.T) {
	prop := func(a, b, c []op) bool {
		// (a ⊕ b) ⊕ c
		left := NewRegistry()
		ab := registryFrom(a)
		ab.Merge(registryFrom(b))
		left.Merge(ab)
		left.Merge(registryFrom(c))
		// a ⊕ (b ⊕ c)
		right := registryFrom(a)
		bc := registryFrom(b)
		bc.Merge(registryFrom(c))
		right.Merge(bc)
		return reflect.DeepEqual(left.Snapshot(), right.Snapshot())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutative(t *testing.T) {
	prop := func(a, b []op) bool {
		ab := registryFrom(a)
		ab.Merge(registryFrom(b))
		ba := registryFrom(b)
		ba.Merge(registryFrom(a))
		return reflect.DeepEqual(ab.Snapshot(), ba.Snapshot())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Inc("x")
	r.Add("x", 2)
	r.Add("y", 0) // zero adds register nothing
	if v := r.Value("x"); v != 3 {
		t.Fatalf("x = %d, want 3", v)
	}
	if v := r.Value("missing"); v != 0 {
		t.Fatalf("missing = %d, want 0", v)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters["x"] != 3 {
		t.Fatalf("snapshot = %v", snap.Counters)
	}
}

// TestRingWraparound drives the recorder past capacity and checks the
// retained window is the most recent events, oldest first.
func TestRingWraparound(t *testing.T) {
	var now time.Duration
	rec := NewRecorder(4, func() time.Duration { return now })
	for i := 0; i < 10; i++ {
		now = time.Duration(i) * time.Millisecond
		rec.Record("t", "v", uint32(i), 0, "")
	}
	if rec.Total() != 10 {
		t.Fatalf("total = %d, want 10", rec.Total())
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped())
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint32(6+i) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, 6+i)
		}
		if e.T != time.Duration(6+i)*time.Millisecond {
			t.Fatalf("event %d time = %v", i, e.T)
		}
	}
}

func TestRecorderUnderCapacity(t *testing.T) {
	rec := NewRecorder(8, nil)
	rec.Record("a", "b", 0, 0, "")
	rec.Record("a", "c", 0, 0, "")
	evs := rec.Events()
	if len(evs) != 2 || evs[0].Verb != "b" || evs[1].Verb != "c" {
		t.Fatalf("events = %v", evs)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("dropped = %d", rec.Dropped())
	}
}

// TestDisabledNoop exercises the nil-receiver paths every subsystem
// takes when observability is off: no panics, no effects.
func TestDisabledNoop(t *testing.T) {
	var o *Obs
	o.Count("x")
	o.CountN("x", 5)
	o.Trace("s", "v", 1, 2, "d")
	if o.Registry() != nil || o.Recorder() != nil {
		t.Fatal("nil Obs leaked a component")
	}
	var reg *Registry
	reg.Add("x", 1)
	reg.Inc("x")
	reg.Merge(NewRegistry())
	NewRegistry().Merge(reg)
	if reg.Value("x") != 0 {
		t.Fatal("nil registry counted")
	}
	if got := reg.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %v", got.Counters)
	}
	var rec *Recorder
	rec.Record("s", "v", 0, 0, "")
	if rec.Total() != 0 || rec.Events() != nil || rec.Dropped() != 0 {
		t.Fatal("nil recorder recorded")
	}
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	// A half-enabled Obs (registry only) must also be safe.
	half := New(NewRegistry(), nil)
	half.Count("x")
	half.Trace("s", "v", 0, 0, "")
	if half.Registry().Value("x") != 1 {
		t.Fatal("half-enabled Obs lost a count")
	}
}

func TestSnapshotExport(t *testing.T) {
	r := NewRegistry()
	r.Add("gfw.inject-type2", 3)
	r.Add("gfw.detect", 1)
	var text bytes.Buffer
	if err := r.Snapshot().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(text.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "gfw.detect") {
		t.Fatalf("text export not sorted/aligned:\n%s", text.String())
	}
	var js bytes.Buffer
	if err := r.Snapshot().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r.Snapshot()) {
		t.Fatalf("JSON round-trip mismatch: %v vs %v", back, r.Snapshot())
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 12345 * time.Microsecond, Subsys: "gfw", Verb: "detect", Seq: 7, Flags: 0x18, Detail: "gfw-new"}
	s := e.String()
	for _, want := range []string{"12.345ms", "gfw", "detect", "seq=7", "flags=0x18", "gfw-new"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(sorted, 50); p != 5 {
		t.Fatalf("p50 = %d, want 5", p)
	}
	if p := Percentile(sorted, 99); p != 10 {
		t.Fatalf("p99 = %d, want 10", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty p50 = %d", p)
	}
}

// BenchmarkDisabledCount measures the disabled (nil) hot path — this
// must compile down to roughly a branch.
func BenchmarkDisabledCount(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Count("gfw.detect")
	}
}

// BenchmarkEnabledCount measures the enabled registry hot path.
func BenchmarkEnabledCount(b *testing.B) {
	o := New(NewRegistry(), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Count("gfw.detect")
	}
}

// BenchmarkRecord measures the enabled flight-recorder hot path.
func BenchmarkRecord(b *testing.B) {
	rec := NewRecorder(DefaultRingSize, func() time.Duration { return 0 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record("tcpstack", "retransmit", uint32(i), 0x10, "")
	}
}

// TestRingSustainedEmission drives a default-size recorder far past
// capacity: the ring must hold exactly the most recent window, the
// totals must count every emission, and a tapped EventSink must have
// seen the complete stream including every evicted event.
func TestRingSustainedEmission(t *testing.T) {
	var now time.Duration
	rec := NewRecorder(0, func() time.Duration { return now })
	var tapped []Event
	rec.Tap(sinkFunc(func(e Event) { tapped = append(tapped, e) }))
	const n = 10_000
	for i := 0; i < n; i++ {
		now = time.Duration(i) * time.Microsecond
		rec.RecordPkt("t", "v", uint32(i+1), uint32(i), uint32(i), 0, "")
	}
	if rec.Total() != n {
		t.Fatalf("total = %d, want %d", rec.Total(), n)
	}
	if want := uint64(n - DefaultRingSize); rec.Dropped() != want {
		t.Fatalf("dropped = %d, want %d", rec.Dropped(), want)
	}
	evs := rec.Events()
	if len(evs) != DefaultRingSize {
		t.Fatalf("retained = %d, want %d", len(evs), DefaultRingSize)
	}
	for i, e := range evs {
		want := uint32(n - DefaultRingSize + i)
		if e.Seq != want || e.Pkt != want+1 || e.Parent != want {
			t.Fatalf("event %d = %+v, want seq %d", i, e, want)
		}
	}
	if len(tapped) != n {
		t.Fatalf("tap saw %d events, want %d", len(tapped), n)
	}
	for i, e := range tapped {
		if e.Seq != uint32(i) {
			t.Fatalf("tap event %d seq = %d", i, e.Seq)
		}
	}
}

// sinkFunc adapts a function to EventSink.
type sinkFunc func(Event)

func (f sinkFunc) RecordEvent(e Event) { f(e) }

// TestPercentileEdgeCases pins the nearest-rank convention at the
// degenerate sizes aggregates actually hit: empty campaigns, single
// trials, and uniform distributions.
func TestPercentileEdgeCases(t *testing.T) {
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := Percentile(nil, p); got != 0 {
			t.Fatalf("empty p%v = %d, want 0", p, got)
		}
		if got := Percentile([]int{7}, p); got != 7 {
			t.Fatalf("single p%v = %d, want 7", p, got)
		}
	}
	equal := []int{3, 3, 3, 3, 3}
	for _, p := range []float64{1, 50, 99} {
		if got := Percentile(equal, p); got != 3 {
			t.Fatalf("all-equal p%v = %d, want 3", p, got)
		}
	}
}
