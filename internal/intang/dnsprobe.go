package intang

import (
	"time"

	"intango/internal/dnsmsg"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// The poisoned-domain prober of §6: INTANG "probed GFW with Alexa's
// top 1 million domain names to generate a list of poisoned domain
// names using the same method as in [12]" (Duan et al.'s hold-on
// heuristic). A plain UDP query is sent for each candidate; the
// poisoner's forged answer arrives first (the censor is closer than
// the resolver), so a domain is booked as poisoned when more than one
// answer arrives — the early forged one plus the genuine one — or when
// the first answer is a known GFW poison address.

// DomainProbeResult is the verdict for one candidate domain.
type DomainProbeResult struct {
	Domain   string
	Poisoned bool
	// Answers is every A record received, in arrival order.
	Answers []packet.Addr
}

// knownPoisonAddrs are documented GFW forged-answer addresses.
var knownPoisonAddrs = map[packet.Addr]bool{
	packet.AddrFrom4(8, 7, 198, 45):    true,
	packet.AddrFrom4(59, 24, 3, 173):   true,
	packet.AddrFrom4(203, 98, 7, 65):   true,
	packet.AddrFrom4(243, 185, 187, 3): true,
}

// ProbePoisonedDomains runs the hold-on style probe for each candidate
// against resolver, over the given stack/path/simulator. Each domain
// gets its own query and a settling window; the simulation is advanced
// internally.
func ProbePoisonedDomains(sim *netem.Simulator, stack *tcpstack.Stack, resolver packet.Addr, domains []string) []DomainProbeResult {
	const clientPort = 5858
	results := make([]DomainProbeResult, len(domains))
	var current *DomainProbeResult
	stack.ListenUDP(clientPort, func(src packet.Addr, srcPort uint16, payload []byte) {
		if current == nil {
			return
		}
		m, err := dnsmsg.Decode(payload)
		if err != nil || !m.IsResponse() || len(m.Answers) == 0 {
			return
		}
		current.Answers = append(current.Answers, m.Answers[0].Addr)
	})
	for i, domain := range domains {
		results[i] = DomainProbeResult{Domain: domain}
		current = &results[i]
		q, err := dnsmsg.NewQuery(uint16(i+1), domain).Encode()
		if err != nil {
			continue
		}
		stack.SendUDP(clientPort, resolver, 53, q)
		sim.RunFor(3 * time.Second) // the hold-on window
		res := &results[i]
		switch {
		case len(res.Answers) == 0:
			res.Poisoned = false
		case knownPoisonAddrs[res.Answers[0]]:
			res.Poisoned = true
		case len(res.Answers) > 1 && !sameAddrs(res.Answers):
			// Multiple conflicting answers: the early one was forged.
			res.Poisoned = true
		}
	}
	current = nil
	return results
}

func sameAddrs(addrs []packet.Addr) bool {
	for _, a := range addrs[1:] {
		if a != addrs[0] {
			return false
		}
	}
	return true
}

// PoisonedList filters the probe results down to the poisoned names —
// the list the DNS forwarder protects.
func PoisonedList(results []DomainProbeResult) []string {
	var out []string
	for _, res := range results {
		if res.Poisoned {
			out = append(out, res.Domain)
		}
	}
	return out
}
