package intang

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/appsim"
	"intango/internal/dnsmsg"
	"intango/internal/gfw"
	"intango/internal/middlebox"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

const keyword = "ultrasurf"

type rig struct {
	sim  *netem.Simulator
	path *netem.Path
	dev  *gfw.Device
	cli  *tcpstack.Stack
	srv  *tcpstack.Stack
	it   *INTANG
}

func newRig(t *testing.T, cfg gfw.Config, opts Options) *rig {
	t.Helper()
	r := &rig{sim: netem.NewSimulator(31)}
	if cfg.Keywords == nil {
		cfg.Keywords = []string{keyword}
	}
	if cfg.DetectionMissProb == 0 {
		cfg.DetectionMissProb = -1
	}
	r.dev = gfw.NewDevice("gfw", cfg, r.sim.Rand())
	r.path = &netem.Path{Sim: r.sim}
	for i := 0; i < 6; i++ {
		r.path.Hops = append(r.path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	r.path.ClientLink.Latency = time.Millisecond
	r.path.Hops[2].Taps = []netem.Processor{r.dev}
	r.cli = tcpstack.NewStack(cliAddr, tcpstack.Linux44(), r.sim)
	r.srv = tcpstack.NewStack(srvAddr, tcpstack.Linux44(), r.sim)
	r.srv.AttachServer(r.path)
	appsim.ServeHTTP(r.srv, 80)
	r.it = New(r.sim, r.path, r.cli, opts)
	r.it.Engine.Env.InsertionTTL = 3
	return r
}

// fetch runs one sensitive GET and reports whether it succeeded.
func (r *rig) fetch(t *testing.T) bool {
	t.Helper()
	c := r.cli.Connect(srvAddr, 80)
	r.sim.RunFor(200 * time.Millisecond)
	if c.State() == tcpstack.Established {
		c.Write(appsim.HTTPRequest("example.com", "/?q="+keyword))
	}
	r.sim.RunFor(5 * time.Second)
	return bytes.Contains(c.Received(), []byte("200 OK")) && !c.GotRST
}

func TestINTANGEvadesWithDefaults(t *testing.T) {
	r := newRig(t, gfw.Config{Model: gfw.ModelEvolved2017}, Options{})
	if !r.fetch(t) {
		t.Fatal("INTANG default candidate failed on a clean path")
	}
	if r.it.Stats["success"] == 0 {
		t.Fatal("success feedback not recorded")
	}
	// The winning strategy is cached for the server.
	if got := r.it.ChooseStrategy(srvAddr); got != r.it.Opts.Candidates[0] {
		t.Fatalf("cached strategy = %q", got)
	}
}

func TestINTANGRotatesOnFailure(t *testing.T) {
	// Force the first candidate to be useless ("none"): INTANG must
	// fail once, rotate, then succeed and cache the second candidate.
	opts := Options{Candidates: []string{"none", "improved-teardown"}}
	r := newRig(t, gfw.Config{Model: gfw.ModelEvolved2017}, opts)
	if r.fetch(t) {
		t.Fatal("no-strategy trial should be censored")
	}
	if r.it.Stats["failure"] == 0 {
		t.Fatal("failure feedback not recorded")
	}
	// The 90-second pair block from the failed trial must lapse first.
	r.sim.RunFor(2 * time.Minute)
	if !r.fetch(t) {
		t.Fatal("second candidate should succeed")
	}
	if got := r.it.ChooseStrategy(srvAddr); got != "improved-teardown" {
		t.Fatalf("cached strategy = %q", got)
	}
}

func TestINTANGCacheExpiry(t *testing.T) {
	opts := Options{CacheTTL: 10 * time.Second}
	r := newRig(t, gfw.Config{Model: gfw.ModelEvolved2017}, opts)
	if !r.fetch(t) {
		t.Fatal("fetch failed")
	}
	first := r.it.ChooseStrategy(srvAddr)
	r.sim.RunFor(11 * time.Second)
	// Cache expired: back to rotation (same candidate 0 here, but via
	// the rotation path — observable through the store).
	if _, ok := r.it.Store.Get("strategy:" + srvAddr.String()); ok {
		t.Fatal("cache entry should have expired")
	}
	_ = first
}

func TestHopCountMeasurement(t *testing.T) {
	r := newRig(t, gfw.Config{Model: gfw.ModelEvolved2017}, Options{})
	r.it.MeasureHops(srvAddr, 80)
	r.sim.RunFor(5 * time.Second)
	hops, ok := r.it.HopsTo(srvAddr)
	if !ok {
		t.Fatal("no hop measurement")
	}
	// 6 routers + delivery: the first TTL that reaches the server is 7.
	if hops != 7 {
		t.Fatalf("hops = %d, want 7", hops)
	}
	if got := r.it.Engine.Env.InsertionTTL; got != 5 {
		t.Fatalf("insertion TTL = %d, want hops-δ = 5", got)
	}
	// The derived TTL works end-to-end.
	if !r.fetch(t) {
		t.Fatal("fetch with measured TTL failed")
	}
}

func TestDNSForwarderEvadesPoisoning(t *testing.T) {
	want := packet.AddrFrom4(44, 44, 44, 44)
	cfg := gfw.Config{
		Model:           gfw.ModelEvolved2017,
		PoisonedDomains: []string{"dropbox.com"},
	}
	r := newRig(t, cfg, Options{Resolver: srvAddr})
	appsim.ServeDNSUDP(r.srv, appsim.Zone{"www.dropbox.com": want})
	appsim.ServeDNSTCP(r.srv, appsim.Zone{"www.dropbox.com": want})

	var got []packet.Addr
	r.cli.ListenUDP(5353, func(src packet.Addr, sp uint16, payload []byte) {
		m, err := dnsmsg.Decode(payload)
		if err == nil && len(m.Answers) > 0 {
			got = append(got, m.Answers[0].Addr)
		}
	})
	q, _ := dnsmsg.NewQuery(77, "www.dropbox.com").Encode()
	r.cli.SendUDP(5353, srvAddr, 53, q)
	r.sim.RunFor(10 * time.Second)
	if len(got) != 1 {
		t.Fatalf("answers = %v, want exactly one (no poisoned race)", got)
	}
	if got[0] != want {
		t.Fatalf("answer = %v, want %v", got[0], want)
	}
	if got[0] == gfw.PoisonAddr {
		t.Fatal("received the poisoned answer")
	}
	if r.it.Stats["dns-forwarded"] != 1 || r.it.Stats["dns-answered"] != 1 {
		t.Fatalf("forwarder stats = %v", r.it.Stats)
	}
}

func TestDNSWithoutForwarderIsPoisoned(t *testing.T) {
	// Control: the same query over plain UDP races the poisoner and
	// loses.
	cfg := gfw.Config{
		Model:           gfw.ModelEvolved2017,
		PoisonedDomains: []string{"dropbox.com"},
	}
	r := newRig(t, cfg, Options{}) // no resolver: forwarder disabled
	appsim.ServeDNSUDP(r.srv, appsim.Zone{})
	var first packet.Addr
	gotAny := false
	r.cli.ListenUDP(5353, func(src packet.Addr, sp uint16, payload []byte) {
		m, err := dnsmsg.Decode(payload)
		if err == nil && len(m.Answers) > 0 && !gotAny {
			gotAny = true
			first = m.Answers[0].Addr
		}
	})
	q, _ := dnsmsg.NewQuery(78, "www.dropbox.com").Encode()
	r.cli.SendUDP(5353, srvAddr, 53, q)
	r.sim.RunFor(5 * time.Second)
	if !gotAny || first != gfw.PoisonAddr {
		t.Fatalf("first answer = %v gotAny=%v, want poison", first, gotAny)
	}
}

func TestDescribeMentionsComponents(t *testing.T) {
	r := newRig(t, gfw.Config{Model: gfw.ModelEvolved2017}, Options{})
	d := r.it.Describe()
	for _, want := range []string{"main thread", "caching thread", "DNS thread"} {
		if !bytes.Contains([]byte(d), []byte(want)) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestAdaptiveDeltaConvergesPastServerSideFirewall(t *testing.T) {
	// A server-side stateful firewall sits one router short of where
	// the default δ=2 insertion TTL dies: the first protected attempt
	// times out (the RST insertion kills the firewall's state), INTANG
	// raises δ, and the next attempt clears it.
	// The TTL-only teardown: improved-teardown's MD5 RST would reach
	// the firewall at any TTL, so no δ could save it.
	r := newRig(t, gfw.Config{Model: gfw.ModelEvolved2017},
		Options{Candidates: []string{"teardown-rst/ttl"}, AdaptiveDelta: true})
	// 6 hops; firewall at hop index 4 (router #5). Measured hops = 7,
	// δ=2 → TTL 5: dies AT router 5 after traversing routers 1-4...
	// the firewall at router #5 is never reached. Move it to router #4
	// (hop index 3): TTL 5 passes router 4 — state killed. δ=3 → TTL 4
	// dies at router 4 before its processors run.
	fw := middlebox.NewStatefulFirewall("ss-fw", false)
	r.path.Hops[3].Processors = append(r.path.Hops[3].Processors, fw)
	r.it.MeasureHops(srvAddr, 80)
	r.sim.RunFor(2 * time.Second)

	first := r.fetch(t)
	r.sim.RunFor(100 * time.Second) // let the response timeout fire
	if !first && r.it.Stats["timeout"] == 0 {
		t.Fatal("no timeout booked for the overshooting insertion")
	}
	ok := false
	for i := 0; i < 4 && !ok; i++ {
		ok = r.fetch(t)
		if !ok {
			r.sim.RunFor(100 * time.Second)
		}
	}
	if !ok {
		t.Fatalf("δ never converged: delta=%d stats=%v", r.it.DeltaFor(srvAddr), r.it.Stats)
	}
	if r.it.DeltaFor(srvAddr) <= 2 {
		t.Fatalf("δ = %d, want > 2 after timeouts", r.it.DeltaFor(srvAddr))
	}
}

func TestAdaptiveDeltaLowersWhenRotationExhausts(t *testing.T) {
	// GFW co-located with the server (outside-China shape): δ=2 makes
	// every TTL insertion die before the censor, so every candidate
	// fails with resets; after a full rotation INTANG lowers δ.
	// TTL-dependent candidates only: the MD5-backed strategies would
	// sail past the co-located censor regardless of δ.
	r := newRigGFWNearServer(t, Options{
		Candidates:    []string{"teardown-rst/ttl", "creation-resync-desync"},
		AdaptiveDelta: true,
	})
	r.it.MeasureHops(srvAddr, 80)
	r.sim.RunFor(2 * time.Second)
	for i := 0; i < 3; i++ {
		if r.fetch(t) {
			break
		}
		r.sim.RunFor(100 * time.Second)
	}
	if r.it.Stats["delta-lower"] == 0 {
		t.Fatalf("δ never lowered: delta=%d stats=%v", r.it.DeltaFor(srvAddr), r.it.Stats)
	}
	if r.it.DeltaFor(srvAddr) >= 2 {
		t.Fatalf("δ = %d, want < 2", r.it.DeltaFor(srvAddr))
	}
}

// newRigGFWNearServer builds a rig with the tap at the second-to-last
// hop.
func newRigGFWNearServer(t *testing.T, opts Options) *rig {
	t.Helper()
	r := &rig{sim: netem.NewSimulator(33)}
	cfg := gfw.Config{Model: gfw.ModelEvolved2017, Keywords: []string{keyword}, DetectionMissProb: -1}
	r.dev = gfw.NewDevice("gfw", cfg, r.sim.Rand())
	r.dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	r.path = &netem.Path{Sim: r.sim}
	for i := 0; i < 6; i++ {
		r.path.Hops = append(r.path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	r.path.ClientLink.Latency = time.Millisecond
	r.path.Hops[5].Taps = []netem.Processor{r.dev}
	r.cli = tcpstack.NewStack(cliAddr, tcpstack.Linux44(), r.sim)
	r.srv = tcpstack.NewStack(srvAddr, tcpstack.Linux44(), r.sim)
	r.srv.AttachServer(r.path)
	appsim.ServeHTTP(r.srv, 80)
	r.it = New(r.sim, r.path, r.cli, opts)
	return r
}

func TestProbePoisonedDomains(t *testing.T) {
	cfg := gfw.Config{
		Model:           gfw.ModelEvolved2017,
		PoisonedDomains: []string{"dropbox.com", "facebook.com"},
	}
	r := newRig(t, cfg, Options{})
	appsim.ServeDNSUDP(r.srv, appsim.Zone{})
	domains := []string{
		"www.dropbox.com", "www.example.com", "www.facebook.com", "news.ycombinator.com",
	}
	results := ProbePoisonedDomains(r.sim, r.cli, srvAddr, domains)
	want := map[string]bool{
		"www.dropbox.com":      true,
		"www.example.com":      false,
		"www.facebook.com":     true,
		"news.ycombinator.com": false,
	}
	for _, res := range results {
		if res.Poisoned != want[res.Domain] {
			t.Errorf("%s: poisoned=%v answers=%v", res.Domain, res.Poisoned, res.Answers)
		}
	}
	list := PoisonedList(results)
	if len(list) != 2 || list[0] != "www.dropbox.com" || list[1] != "www.facebook.com" {
		t.Fatalf("poisoned list = %v", list)
	}
}
