// Package intang implements the INTANG engine of §6: a
// measurement-driven censorship-evasion controller that interposes on
// the client's traffic (the netfilter-queue position), chooses the most
// promising strategy per server from cached history, measures hop
// counts for TTL-based insertion packets, and transparently forwards
// UDP DNS queries over evasion-protected TCP.
package intang

import (
	"fmt"
	"strings"
	"time"

	"intango/internal/core"
	"intango/internal/dnsmsg"
	"intango/internal/kvstore"
	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// Options configures an INTANG instance.
type Options struct {
	// Candidates is the ordered list of strategies to try against a
	// server with no cached result — registry names ("improved-teardown")
	// or raw spec text ("on:first-payload[teardown(flags=rst,disc=ttl)]").
	// Defaults to the paper's best performers (Table 4), strongest
	// first.
	Candidates []string
	// CacheTTL bounds how long a per-server strategy result is trusted
	// before re-measurement (§6: "retained only for a certain period").
	CacheTTL time.Duration
	// Resolver is the unpolluted DNS-over-TCP resolver the DNS
	// forwarder targets.
	Resolver packet.Addr
	// Delta is the initial TTL safety margin subtracted from the
	// measured hop count (§7.1, δ=2).
	Delta int
	// MaxProbeTTL bounds hop-count probing.
	MaxProbeTTL int
	// ResponseTimeout is how long a protected connection may stay
	// silent before INTANG books it as a Failure-1 and adapts.
	ResponseTimeout time.Duration
	// AdaptiveDelta lets INTANG converge δ per destination (§7.1): a
	// timeout (insertion likely hit the server or a server-side
	// middlebox) raises δ; exhausting the strategy rotation (insertion
	// likely dying before the GFW) lowers it.
	AdaptiveDelta bool
}

func (o Options) withDefaults() Options {
	if o.Candidates == nil {
		o.Candidates = []string{
			"teardown-reversal", "improved-teardown",
			"creation-resync-desync", "improved-prefill",
		}
	}
	if o.CacheTTL == 0 {
		o.CacheTTL = 30 * time.Minute
	}
	if o.Delta == 0 {
		o.Delta = 2
	}
	if o.MaxProbeTTL == 0 {
		o.MaxProbeTTL = 32
	}
	if o.ResponseTimeout == 0 {
		o.ResponseTimeout = 6 * time.Second
	}
	return o
}

// INTANG owns a core.Engine and drives its strategy choice.
type INTANG struct {
	Engine *core.Engine
	Opts   Options
	Store  *kvstore.CachedStore

	sim   *netem.Simulator
	stack *tcpstack.Stack

	// candidates are Opts.Candidates resolved once at New: the display
	// name the caller used, the canonical spec string that identifies
	// the strategy (the per-server result cache stores these), and the
	// compiled factory.
	candidates []candidate
	// byCanon maps a cached canonical spec string back to its
	// candidate.
	byCanon map[string]*candidate

	// rotation tracks which candidate a server is on.
	rotation map[packet.Addr]int
	// live maps a flow to the server/strategy pair awaiting feedback.
	live map[packet.FourTuple]*liveFlow

	// hops holds measured hop counts per destination.
	hops map[packet.Addr]int
	// delta holds the converged per-destination TTL margin.
	delta map[packet.Addr]int
	// probe bookkeeping: probe source port → TTL used.
	probePorts map[uint16]int
	probeBase  uint16

	// dnsPending maps a forwarder TCP connection to the original UDP
	// query context.
	dnsPending map[*tcpstack.Conn]dnsQueryCtx

	// Stats counts engine events by kind.
	Stats map[string]int

	// Obs, when set, mirrors the cache/rotation/δ life cycle into the
	// shared observability registry and flight recorder.
	Obs *obs.Obs
}

// candidate is one resolved strategy choice.
type candidate struct {
	display string
	canon   string
	factory core.Factory
}

type liveFlow struct {
	server packet.Addr
	// strategy is the canonical spec string — the identity the result
	// cache keys off; display is what humans (stats, traces) see.
	strategy string
	display  string
	decided  bool
}

type dnsQueryCtx struct {
	clientPort uint16
	id         uint16
}

// New wires an INTANG instance between stack and the client end of a
// substrate (a linear netem.Path or a graph netem.Fabric).
func New(sim *netem.Simulator, n netem.Net, stack *tcpstack.Stack, opts Options) *INTANG {
	opts = opts.withDefaults()
	it := &INTANG{
		Opts:       opts,
		Store:      kvstore.NewCachedStore(1024, func() time.Duration { return sim.Now() }),
		sim:        sim,
		stack:      stack,
		byCanon:    make(map[string]*candidate),
		rotation:   make(map[packet.Addr]int),
		live:       make(map[packet.FourTuple]*liveFlow),
		hops:       make(map[packet.Addr]int),
		delta:      make(map[packet.Addr]int),
		probePorts: make(map[uint16]int),
		probeBase:  61000,
		dnsPending: make(map[*tcpstack.Conn]dnsQueryCtx),
		Stats:      make(map[string]int),
	}
	it.candidates = make([]candidate, len(opts.Candidates))
	for i, key := range opts.Candidates {
		c := resolveCandidate(key)
		it.candidates[i] = c
		it.byCanon[c.canon] = &it.candidates[i]
	}
	env := core.DefaultEnv(10, sim.Rand())
	it.Engine = core.NewEngine(sim, n, stack, env)
	it.Engine.NewStrategy = it.newStrategy
	it.Engine.OnInbound = it.onInbound
	it.Engine.OnOutbound = it.onOutbound
	return it
}

// cacheKey is the per-server strategy record key.
func cacheKey(addr packet.Addr) string { return "strategy:" + addr.String() }

// resolveCandidate turns a candidate key (registry name or spec text)
// into its display name, canonical spec string, and compiled factory.
// Unresolvable keys degrade to a passthrough under their own name, as
// the old registry-miss path did.
func resolveCandidate(key string) candidate {
	if f, canon, ok := core.ResolveStrategy(key); ok {
		return candidate{display: key, canon: canon, factory: f}
	}
	return candidate{display: key, canon: key,
		factory: func() core.Strategy { return core.Passthrough{} }}
}

// newStrategy picks the most promising strategy for a new flow (§6).
func (it *INTANG) newStrategy(tuple packet.FourTuple) core.Strategy {
	server := tuple.DstAddr
	c := it.chooseCandidate(server)
	lf := &liveFlow{server: server, strategy: c.canon, display: c.display}
	it.live[tuple] = lf
	it.Stats["flow:"+c.display]++
	if it.Obs != nil {
		it.Obs.Count("intang.flow")
		it.Obs.Trace("intang", "flow", 0, 0, c.display+" -> "+server.String())
	}
	if it.Opts.ResponseTimeout > 0 {
		it.sim.At(it.Opts.ResponseTimeout, func() { it.reportTimeout(lf) })
	}
	return c.factory()
}

// DeltaFor returns the converged TTL margin for a destination.
func (it *INTANG) DeltaFor(server packet.Addr) int {
	if d, ok := it.delta[server]; ok {
		return d
	}
	return it.Opts.Delta
}

// reportTimeout books a silent connection as Failure-1: the likeliest
// cause is an insertion packet overshooting the GFW into a server-side
// middlebox or the server, so δ grows (the insertion TTL shrinks).
func (it *INTANG) reportTimeout(lf *liveFlow) {
	if lf.decided {
		return
	}
	lf.decided = true
	it.Stats["timeout"]++
	if it.Obs != nil {
		it.Obs.Count("intang.timeout")
		it.Obs.Trace("intang", "timeout", 0, 0, lf.display+" @ "+lf.server.String())
	}
	if v, ok := it.Store.Get(cacheKey(lf.server)); ok && v == lf.strategy {
		it.Store.Delete(cacheKey(lf.server))
	}
	if it.Opts.AdaptiveDelta {
		d := it.DeltaFor(lf.server)
		if d < 6 {
			it.delta[lf.server] = d + 1
			it.applyTTL(lf.server)
			it.Stats["delta-raise"]++
			if it.Obs != nil {
				it.Obs.Count("intang.delta-raise")
			}
		}
	}
}

// ChooseStrategy returns the display name of the strategy INTANG would
// use for server now: the cached winner if present, else the current
// rotation candidate.
func (it *INTANG) ChooseStrategy(server packet.Addr) string {
	return it.chooseCandidate(server).display
}

// ChooseSpec is ChooseStrategy in canonical spec form — the identity
// the per-server result cache stores.
func (it *INTANG) ChooseSpec(server packet.Addr) string {
	return it.chooseCandidate(server).canon
}

// chooseCandidate resolves the cached winner (a canonical spec string)
// or falls back to the rotation (§6).
func (it *INTANG) chooseCandidate(server packet.Addr) candidate {
	if v, ok := it.Store.Get(cacheKey(server)); ok {
		if it.Obs != nil {
			it.Obs.Count("intang.cache-hit")
		}
		if c, ok := it.byCanon[v]; ok {
			return *c
		}
		// A cached spec outside the candidate set (written by an earlier
		// configuration): still honour it.
		return resolveCandidate(v)
	}
	if it.Obs != nil {
		it.Obs.Count("intang.cache-miss")
	}
	idx := it.rotation[server] % len(it.candidates)
	return it.candidates[idx]
}

// reportSuccess caches the working strategy for the server.
func (it *INTANG) reportSuccess(lf *liveFlow) {
	if lf.decided {
		return
	}
	lf.decided = true
	// lf.strategy is the canonical spec string, so the cached record
	// survives renames of the display alias.
	it.Store.Set(cacheKey(lf.server), lf.strategy, it.Opts.CacheTTL)
	it.Stats["success"]++
	if it.Obs != nil {
		it.Obs.Count("intang.cache-store")
		it.Obs.Trace("intang", "cache-store", 0, 0, lf.display+" @ "+lf.server.String())
	}
}

// reportFailure advances the rotation for the server and drops any
// stale cached entry.
func (it *INTANG) reportFailure(lf *liveFlow) {
	if lf.decided {
		return
	}
	lf.decided = true
	if v, ok := it.Store.Get(cacheKey(lf.server)); ok && v == lf.strategy {
		it.Store.Delete(cacheKey(lf.server))
	}
	it.rotation[lf.server]++
	it.Stats["failure"]++
	if it.Obs != nil {
		it.Obs.Count("intang.rotation")
		it.Obs.Trace("intang", "rotation", 0, 0, lf.display+" failed @ "+lf.server.String())
	}
	// Exhausting the whole rotation suggests the insertion packets are
	// not reaching the GFW at all (§7.1's outside-China TTL problem):
	// shrink δ so they travel further.
	if it.Opts.AdaptiveDelta && it.rotation[lf.server]%len(it.Opts.Candidates) == 0 {
		if d := it.DeltaFor(lf.server); d > 0 {
			it.delta[lf.server] = d - 1
			it.applyTTL(lf.server)
			it.Stats["delta-lower"]++
			if it.Obs != nil {
				it.Obs.Count("intang.delta-lower")
			}
		}
	}
}

// onInbound watches feedback for live flows, hop-probe replies, and
// forwarder DNS responses.
func (it *INTANG) onInbound(pkt *packet.Packet) bool {
	switch {
	case pkt.ICMP != nil && pkt.ICMP.Type == packet.ICMPTimeExceeded:
		// Hop probes that died mid-path; nothing to learn beyond "not
		// reached", which the TTL sweep already encodes.
		if _, sp, _, _, ok := pkt.ICMP.QuotedTCP(); ok {
			if _, isProbe := it.probePorts[sp]; isProbe {
				return false // consume
			}
		}
		return true
	case pkt.TCP != nil:
		dport := pkt.TCP.DstPort
		if ttl, isProbe := it.probePorts[dport]; isProbe {
			// A SYN/ACK or RST from the server: TTL `ttl` reached it.
			if cur, ok := it.hops[pkt.IP.Src]; !ok || ttl < cur {
				it.hops[pkt.IP.Src] = ttl
				it.applyTTL(pkt.IP.Src)
			}
			return false // consume: the stack has no socket for probes
		}
		it.feedback(pkt)
		return true
	}
	return true
}

// feedback interprets inbound packets as per-flow success/failure
// evidence: server payload means the strategy worked; a RST means it
// did not.
func (it *INTANG) feedback(pkt *packet.Packet) {
	key := pkt.Tuple().Reverse()
	lf, ok := it.live[key]
	if !ok {
		return
	}
	switch {
	case len(pkt.Payload) > 0:
		it.reportSuccess(lf)
	case pkt.TCP.HasFlag(packet.FlagRST):
		it.reportFailure(lf)
	}
}

// --- hop-count measurement (tcptraceroute-style, §7.1) ---

// MeasureHops launches a TTL sweep of SYN probes toward dst:port. The
// result lands asynchronously (as the simulation runs) in HopsTo, and
// the insertion TTL is updated automatically.
func (it *INTANG) MeasureHops(dst packet.Addr, port uint16) {
	for ttl := 1; ttl <= it.Opts.MaxProbeTTL; ttl++ {
		srcPort := it.probeBase
		it.probeBase++
		it.probePorts[srcPort] = ttl
		probe := packet.NewTCP(it.stack.Addr, srcPort, dst, port, packet.FlagSYN,
			packet.Seq(it.sim.Rand().Uint32()), 0, nil)
		probe.IP.TTL = uint8(ttl)
		probe.Finalize()
		delay := time.Duration(ttl) * time.Millisecond
		p := probe
		it.sim.At(delay, func() { it.Engine.Dev.WritePacket(p) })
	}
	it.Stats["hop-probe-sweeps"]++
}

// HopsTo returns the measured hop count to dst, if the sweep completed.
func (it *INTANG) HopsTo(dst packet.Addr) (int, bool) {
	h, ok := it.hops[dst]
	return h, ok
}

// applyTTL folds the hop measurement and converged δ into the crafting
// environment: insertion TTL = hops - δ (§7.1).
func (it *INTANG) applyTTL(dst packet.Addr) {
	h, ok := it.hops[dst]
	if !ok {
		return
	}
	ttl := h - it.DeltaFor(dst)
	if ttl < 1 {
		ttl = 1
	}
	it.Engine.Env.InsertionTTL = uint8(ttl)
}

// --- DNS forwarder (§6) ---

// onOutbound redirects application UDP DNS queries into TCP queries
// against the configured resolver, protected by the same evasion
// strategies as any other connection.
func (it *INTANG) onOutbound(pkt *packet.Packet) bool {
	if pkt.UDP == nil || pkt.UDP.DstPort != 53 || it.Opts.Resolver.IsZero() {
		return true
	}
	query, err := dnsmsg.Decode(pkt.Payload)
	if err != nil || query.IsResponse() {
		return true
	}
	it.Stats["dns-forwarded"]++
	clientPort := pkt.UDP.SrcPort
	conn := it.stack.Connect(it.Opts.Resolver, 53)
	it.dnsPending[conn] = dnsQueryCtx{clientPort: clientPort, id: query.ID}
	payload := dnsmsg.FrameTCP(pkt.Payload)
	sent := false
	conn.OnStateChange = func(from, to tcpstack.State) {
		if to == tcpstack.Established && !sent {
			sent = true
			conn.Write(payload)
		}
	}
	consumed := 0
	conn.OnData = func([]byte) {
		msgs, n := dnsmsg.UnframeTCP(conn.Received()[consumed:])
		consumed += n
		for _, raw := range msgs {
			it.deliverDNSResponse(conn, raw)
		}
	}
	return false // the UDP query is consumed
}

// deliverDNSResponse converts a TCP DNS answer back into the UDP
// response the application expects — "completely transparent" (§6).
func (it *INTANG) deliverDNSResponse(conn *tcpstack.Conn, raw []byte) {
	ctx, ok := it.dnsPending[conn]
	if !ok {
		return
	}
	delete(it.dnsPending, conn)
	resp := packet.NewUDP(it.Opts.Resolver, 53, it.stack.Addr, ctx.clientPort, raw)
	it.stack.Deliver(resp)
	it.Stats["dns-answered"]++
	conn.Close()
}

// Describe renders the component diagram of Fig. 2 as text: the
// interception loop, strategy registry, caches, and DNS thread.
func (it *INTANG) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INTANG{candidates=%v, cacheTTL=%v, resolver=%v, δ=%d}\n",
		it.Opts.Candidates, it.Opts.CacheTTL, it.Opts.Resolver, it.Opts.Delta)
	b.WriteString("main thread: netfilter-queue loop → strategy callbacks → raw-socket injection\n")
	b.WriteString("caching thread: LRU front cache → TTL'd store (Redis stand-in)\n")
	b.WriteString("DNS thread: UDP intercept → DNS-over-TCP forwarder → UDP reply synthesis\n")
	return b.String()
}
