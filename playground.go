package intango

import (
	"bytes"
	"time"

	"intango/internal/appsim"
	"intango/internal/core"
	"intango/internal/gfw"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// PlaygroundConfig configures a ready-made client—GFW—server topology.
type PlaygroundConfig struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Hops is the router count between client and server (default 8).
	Hops int
	// GFWHop is the wiretap position (default 2).
	GFWHop int
	// GFW configures the censor; zero value gives an evolved-model
	// device censoring the keyword "ultrasurf" deterministically.
	GFW GFWConfig
	// ServerStack selects the server TCP profile (default Linux 4.4).
	ServerStack StackProfile
	// Keyword overrides the censored keyword (default "ultrasurf").
	Keyword string
}

// Playground is an assembled simulation the examples and quickstart
// build on: a client stack behind a strategy engine, a GFW wiretap, and
// an HTTP server.
type Playground struct {
	Sim    *Simulator
	Path   *Path
	GFW    *GFWDevice
	Client *Stack
	Server *Stack
	Engine *Engine

	cfg        PlaygroundConfig
	ServerAddr Addr
	ClientAddr Addr
}

// NewPlayground assembles the topology.
func NewPlayground(cfg PlaygroundConfig) *Playground {
	if cfg.Hops == 0 {
		cfg.Hops = 8
	}
	if cfg.GFWHop == 0 {
		cfg.GFWHop = 2
	}
	if cfg.Keyword == "" {
		cfg.Keyword = "ultrasurf"
	}
	if cfg.GFW.Keywords == nil {
		cfg.GFW.Keywords = []string{cfg.Keyword}
		cfg.GFW.Model = gfw.ModelEvolved2017
		cfg.GFW.DetectionMissProb = -1 // deterministic playground
	}
	if cfg.ServerStack.Name == "" {
		cfg.ServerStack = tcpstack.Linux44()
	}
	pg := &Playground{
		Sim:        netem.NewSimulator(cfg.Seed),
		cfg:        cfg,
		ClientAddr: packet.AddrFrom4(10, 0, 0, 1),
		ServerAddr: packet.AddrFrom4(203, 0, 113, 80),
	}
	pg.Path = &netem.Path{Sim: pg.Sim}
	for i := 0; i < cfg.Hops; i++ {
		pg.Path.Hops = append(pg.Path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	pg.Path.ClientLink.Latency = time.Millisecond
	pg.GFW = gfw.NewDevice("gfw", cfg.GFW, pg.Sim.Rand())
	pg.GFW.SetClientSide(func(a Addr) bool { return a[0] == 10 })
	pg.Path.Hops[cfg.GFWHop].Taps = []netem.Processor{pg.GFW}
	pg.Path.Hops[cfg.GFWHop].Processors = []netem.Processor{pg.GFW.IPFilter()}

	pg.Client = tcpstack.NewStack(pg.ClientAddr, tcpstack.Linux44(), pg.Sim)
	pg.Server = tcpstack.NewStack(pg.ServerAddr, cfg.ServerStack, pg.Sim)
	pg.Server.AttachServer(pg.Path)
	appsim.ServeHTTP(pg.Server, 80)

	env := core.DefaultEnv(uint8(cfg.Hops-1), pg.Sim.Rand())
	pg.Engine = core.NewEngine(pg.Sim, pg.Path, pg.Client, env)
	return pg
}

// Fetch performs one HTTP GET for uri through the given strategy
// factory (nil for no strategy) and returns the client connection after
// the simulation settles.
func (pg *Playground) Fetch(uri string, factory StrategyFactory) *Conn {
	if factory != nil {
		pg.Engine.NewStrategy = func(packet.FourTuple) core.Strategy { return factory() }
	} else {
		pg.Engine.NewStrategy = nil
	}
	conn := pg.Client.Connect(pg.ServerAddr, 80)
	pg.Sim.RunFor(500 * time.Millisecond)
	if conn.State() == tcpstack.Established {
		conn.Write(appsim.HTTPRequest("site.example", uri))
	}
	pg.Sim.RunFor(8 * time.Second)
	return conn
}

// Outcome classifies a finished fetch with the paper's notation:
// "success", "failure-1" (no response, no GFW resets) or "failure-2"
// (GFW resets).
func (pg *Playground) Outcome(conn *Conn) string {
	injected := pg.GFW.Stats["inject-type1"]+pg.GFW.Stats["inject-type2"]+
		pg.GFW.Stats["block-enforce"]+pg.GFW.Stats["forged-synack"] > 0
	responded := bytes.Contains(conn.Received(), []byte(" 200 OK"))
	switch {
	case responded && !(conn.GotRST && injected):
		return "success"
	case conn.GotRST && injected:
		return "failure-2"
	default:
		return "failure-1"
	}
}

// WaitOutBlock advances virtual time past the GFW's 90-second pair
// blocklist.
func (pg *Playground) WaitOutBlock() {
	pg.Sim.RunFor(95 * time.Second)
}
