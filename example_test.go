package intango_test

import (
	"fmt"

	"intango"
)

// The canonical flow: a sensitive request is censored, the Fig. 4
// combined strategy evades.
func ExamplePlayground() {
	pg := intango.NewPlayground(intango.PlaygroundConfig{Seed: 1})

	conn := pg.Fetch("/?q=ultrasurf", nil)
	fmt.Println("plain:", pg.Outcome(conn))

	pg.WaitOutBlock()
	conn = pg.Fetch("/?q=ultrasurf", intango.Strategies()["teardown-reversal"])
	fmt.Println("evaded:", pg.Outcome(conn))
	// Output:
	// plain: failure-2
	// evaded: success
}

// The headline finding of the paper: the 2013-era fake-SYN evasion
// works against the old GFW model and fails against the evolved one.
func ExamplePlayground_modelEvolution() {
	strategy := intango.Strategies()["tcb-creation-syn/ttl"]

	old := intango.NewPlayground(intango.PlaygroundConfig{
		Seed: 2,
		GFW: intango.GFWConfig{
			Model:             intango.ModelKhattak2013,
			Keywords:          []string{"ultrasurf"},
			DetectionMissProb: -1,
		},
	})
	fmt.Println("2013 model:", old.Outcome(old.Fetch("/?q=ultrasurf", strategy)))

	evolved := intango.NewPlayground(intango.PlaygroundConfig{Seed: 2})
	fmt.Println("2017 model:", evolved.Outcome(evolved.Fetch("/?q=ultrasurf", strategy)))
	// Output:
	// 2013 model: success
	// 2017 model: failure-2
}

// Every §5/§7 strategy beats the evolved model on a clean path.
func ExampleStrategies() {
	for _, name := range []string{
		"improved-teardown", "improved-prefill",
		"creation-resync-desync", "teardown-reversal",
	} {
		pg := intango.NewPlayground(intango.PlaygroundConfig{Seed: 3})
		conn := pg.Fetch("/?q=ultrasurf", intango.Strategies()[name])
		fmt.Printf("%s: %s\n", name, pg.Outcome(conn))
	}
	// Output:
	// improved-teardown: success
	// improved-prefill: success
	// creation-resync-desync: success
	// teardown-reversal: success
}
