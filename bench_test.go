package intango

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, each regenerating the corresponding artifact at a
// reduced (but shape-preserving) scale per iteration, plus
// micro-benchmarks of the substrates. Run everything with
//
//	go test -bench=. -benchmem
//
// and regenerate the full-scale artifacts with cmd/tables -scale paper.

import (
	"testing"

	"intango/internal/core"
	"intango/internal/dpi"
	"intango/internal/experiment"
	"intango/internal/gfw"
	"intango/internal/ignorepath"
	"intango/internal/netem"
	"intango/internal/packet"
)

// benchScale keeps per-iteration work bounded while covering all 11
// vantage-point profiles.
func benchScale() experiment.Scale { return experiment.Scale{VPs: 11, Servers: 4, Trials: 1} }

// BenchmarkTable1 regenerates Table 1 (all 15 existing-strategy rows,
// with and without the sensitive keyword) per iteration.
func BenchmarkTable1(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		rows := experiment.RunTable1(r, benchScale())
		if len(rows) != 15 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable2 regenerates the middlebox-behaviour matrix.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiment.RunTable2(5); len(res) != 5 {
			b.Fatalf("rows = %d", len(res))
		}
	}
}

// BenchmarkTable3 reruns the §5.3 ignore-path analysis (server-model
// enumeration, GFW probing, middlebox cross-validation).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings := ignorepath.Analyze()
		for _, f := range findings {
			if f.UsableInsertion == f.Candidate.RouterHostile {
				b.Fatalf("%q regressed", f.Candidate.Condition)
			}
		}
	}
}

// BenchmarkTable4 regenerates the new-strategy rows (inside China).
func BenchmarkTable4(b *testing.B) {
	r := experiment.NewRunner(42)
	servers := experiment.Servers(4, r.Cal, 42)
	for i := 0; i < b.N; i++ {
		rows := experiment.RunTable4(r, experiment.VantagePoints(), servers, 1)
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable4Outside regenerates the outside-China block.
func BenchmarkTable4Outside(b *testing.B) {
	r := experiment.NewRunner(42)
	servers := experiment.OutsideServers(4, r.Cal, 42)
	for i := 0; i < b.N; i++ {
		experiment.RunTable4(r, experiment.OutsideVantagePoints(), servers, 1)
	}
}

// BenchmarkTable4INTANG runs the learning INTANG series row.
func BenchmarkTable4INTANG(b *testing.B) {
	r := experiment.NewRunner(42)
	vps := experiment.VantagePoints()[:3]
	servers := experiment.Servers(2, r.Cal, 42)
	for i := 0; i < b.N; i++ {
		row := experiment.RunTable4INTANG(r, vps, servers, 3)
		if row.Success[2] < 80 {
			b.Fatalf("INTANG success %.1f", row.Success[2])
		}
	}
}

// BenchmarkTable5 validates the preferred insertion constructions.
func BenchmarkTable5(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if cells := experiment.RunTable5(r); len(cells) != 7 {
			b.Fatalf("cells = %d", len(cells))
		}
	}
}

// BenchmarkTable6 regenerates the TCP-DNS evasion table.
func BenchmarkTable6(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if rows := experiment.RunTable6(r, 2); len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTorEvasion reruns the §7.3 Tor campaign.
func BenchmarkTorEvasion(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if res := experiment.RunTor(r, 1); len(res) != 11 {
			b.Fatalf("results = %d", len(res))
		}
	}
}

// BenchmarkVPNEvasion reruns the §7.3 OpenVPN measurements.
func BenchmarkVPNEvasion(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if res := experiment.RunVPN(r); len(res) != 2 {
			b.Fatalf("results = %d", len(res))
		}
	}
}

// BenchmarkFigure1Topology renders the threat-model topology.
func BenchmarkFigure1Topology(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if experiment.Figure1(r) == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure2Pipeline traces a request through every INTANG
// component.
func BenchmarkFigure2Pipeline(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if experiment.Figure2(r) == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure3Sequence emits the Fig. 3 combined-strategy packet
// sequence diagram.
func BenchmarkFigure3Sequence(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if experiment.Figure3(r) == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure4Sequence emits the Fig. 4 diagram.
func BenchmarkFigure4Sequence(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if experiment.Figure4(r) == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkResetSignature measures one full detect-and-reset cycle
// (§2.1: 1 type-1 + 3 type-2 resets, blocklisting) end to end.
func BenchmarkResetSignature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pg := NewPlayground(PlaygroundConfig{Seed: int64(i)})
		conn := pg.Fetch("/?q=ultrasurf", nil)
		if pg.Outcome(conn) != "failure-2" {
			b.Fatal("detection did not fire")
		}
	}
}

// BenchmarkAblation sweeps the §8 countermeasure ladder (the ablation
// benches DESIGN.md calls out for the design choices).
func BenchmarkAblation(b *testing.B) {
	r := experiment.NewRunner(42)
	for i := 0; i < b.N; i++ {
		if cells := experiment.RunAblation(r); len(cells) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkPacketSerialize measures TCP packet serialization with
// checksums.
func BenchmarkPacketSerialize(b *testing.B) {
	p := packet.NewTCP(packet.AddrFrom4(10, 0, 0, 1), 4000, packet.AddrFrom4(203, 0, 113, 80), 80,
		packet.FlagPSH|packet.FlagACK, 1000, 2000, make([]byte, 512))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Serialize(packet.SerializeOptions{ComputeChecksums: true, FixLengths: true})
	}
}

// BenchmarkPacketParse measures wire-format parsing.
func BenchmarkPacketParse(b *testing.B) {
	p := packet.NewTCP(packet.AddrFrom4(10, 0, 0, 1), 4000, packet.AddrFrom4(203, 0, 113, 80), 80,
		packet.FlagPSH|packet.FlagACK, 1000, 2000, make([]byte, 512))
	wire := p.Serialize(packet.SerializeOptions{ComputeChecksums: true, FixLengths: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := packet.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPIScan measures the Aho–Corasick engine over a 1 KiB
// payload with a realistic keyword list.
func BenchmarkDPIScan(b *testing.B) {
	keywords := []string{"ultrasurf", "falun", "freegate", "dynaweb", "tiananmen", "vpn over tcp"}
	m := dpi.NewMatcher(keywords)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.Contains(payload) {
			b.Fatal("unexpected match")
		}
	}
}

// BenchmarkGFWProcessPacket measures the per-packet cost of the
// evolved device's tap path.
func BenchmarkGFWProcessPacket(b *testing.B) {
	sim := netem.NewSimulator(1)
	dev := gfw.NewDevice("gfw", gfw.Config{Model: gfw.ModelEvolved2017, Keywords: []string{"ultrasurf"}}, sim.Rand())
	path := &netem.Path{Sim: sim}
	path.Hops = []*netem.Hop{{Name: "r", Router: true}}
	ctx := &netem.Context{Sim: sim, Net: path, HopIndex: 0}
	cli, srv := packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(203, 0, 113, 80)
	syn := packet.NewTCP(cli, 4000, srv, 80, packet.FlagSYN, 100, 0, nil)
	dev.Process(ctx, syn, netem.ToServer)
	data := packet.NewTCP(cli, 4000, srv, 80, packet.FlagACK, 101, 1, make([]byte, 256))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data.TCP.Seq = packet.Seq(101 + i*256)
		dev.Process(ctx, data, netem.ToServer)
	}
}

// BenchmarkSimulatorEvents measures raw event throughput.
func BenchmarkSimulatorEvents(b *testing.B) {
	sim := netem.NewSimulator(1)
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.At(1, tick)
		}
	}
	sim.At(1, tick)
	sim.Run(b.N + 1)
}

// BenchmarkEvasionTrial measures one complete protected fetch
// (handshake, strategy volley, detection-free response).
func BenchmarkEvasionTrial(b *testing.B) {
	factory := core.BuiltinFactories()["teardown-reversal"]
	for i := 0; i < b.N; i++ {
		pg := NewPlayground(PlaygroundConfig{Seed: int64(i)})
		conn := pg.Fetch("/?q=ultrasurf", factory)
		if pg.Outcome(conn) != "success" {
			b.Fatal("evasion failed")
		}
	}
}

// BenchmarkTrialHotPath measures one complete sensitive-fetch trial
// through the experiment runner — the unit of work every campaign
// multiplies by VPs × servers × trials. allocs/op here is the number
// the pooling work is judged against (BENCH_netem.json records the
// pre- and post-PR values).
func BenchmarkTrialHotPath(b *testing.B) {
	r := experiment.NewRunner(42)
	vp := experiment.VantagePoints()[0]
	srv := experiment.Servers(1, r.Cal, 42)[0]
	factory := core.BuiltinFactories()["teardown-rst/ttl"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RunOne(vp, srv, factory, true, i)
	}
}

// BenchmarkCampaign measures a small multi-pair campaign per
// iteration, serially and through the parallel runner, reporting
// trials/sec shape at campaign granularity.
func BenchmarkCampaign(b *testing.B) {
	sc := experiment.Scale{VPs: 3, Servers: 2, Trials: 1}
	b.Run("serial", func(b *testing.B) {
		r := experiment.NewRunner(42)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if rows := experiment.RunTable1(r, sc); len(rows) != 15 {
				b.Fatalf("rows = %d", len(rows))
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		r := experiment.NewRunner(42)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if rows := experiment.RunTable1Parallel(r, sc); len(rows) != 15 {
				b.Fatalf("rows = %d", len(rows))
			}
		}
	})
}

// BenchmarkDiagnosis runs the §3.4 controlled failure-attribution
// sweep (the paper's stated future work, implemented).
func BenchmarkDiagnosis(b *testing.B) {
	r := experiment.NewRunner(42)
	vps := experiment.VantagePoints()[:3]
	servers := experiment.Servers(4, r.Cal, 42)
	for i := 0; i < b.N; i++ {
		counts := r.DiagnoseCampaign("teardown-rst/ttl", vps, servers, 1)
		if counts["failures"] == 0 {
			b.Skip("no failures at this scale")
		}
	}
}
