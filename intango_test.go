package intango

import (
	"testing"
)

func TestPlaygroundNoStrategyIsCensored(t *testing.T) {
	pg := NewPlayground(PlaygroundConfig{Seed: 1})
	conn := pg.Fetch("/?q=ultrasurf", nil)
	if got := pg.Outcome(conn); got != "failure-2" {
		t.Fatalf("outcome = %q, want failure-2", got)
	}
}

func TestPlaygroundCleanFetchWorks(t *testing.T) {
	pg := NewPlayground(PlaygroundConfig{Seed: 1})
	conn := pg.Fetch("/index.html", nil)
	if got := pg.Outcome(conn); got != "success" {
		t.Fatalf("outcome = %q, want success", got)
	}
}

func TestPlaygroundStrategiesEvade(t *testing.T) {
	for _, name := range []string{"improved-teardown", "improved-prefill", "creation-resync-desync", "teardown-reversal"} {
		pg := NewPlayground(PlaygroundConfig{Seed: 2})
		conn := pg.Fetch("/?q=ultrasurf", Strategies()[name])
		if got := pg.Outcome(conn); got != "success" {
			t.Errorf("%s: outcome = %q, want success", name, got)
		}
	}
}

func TestPlaygroundBlocklistAndRecovery(t *testing.T) {
	pg := NewPlayground(PlaygroundConfig{Seed: 3})
	pg.Fetch("/?q=ultrasurf", nil) // trips the blocklist
	conn := pg.Fetch("/clean", nil)
	if got := pg.Outcome(conn); got == "success" {
		t.Fatal("fetch during the 90-second block should fail")
	}
	pg.WaitOutBlock()
	conn = pg.Fetch("/clean", nil)
	if got := pg.Outcome(conn); got != "success" {
		t.Fatalf("post-block outcome = %q", got)
	}
}

func TestPlaygroundDeterministic(t *testing.T) {
	run := func() string {
		pg := NewPlayground(PlaygroundConfig{Seed: 7})
		return pg.Outcome(pg.Fetch("/?q=ultrasurf", Strategies()["teardown-rst/ttl"]))
	}
	if run() != run() {
		t.Fatal("equal seeds must give equal outcomes")
	}
}

func TestStrategiesExported(t *testing.T) {
	m := Strategies()
	if len(m) < 15 {
		t.Fatalf("only %d strategies exported", len(m))
	}
	if _, ok := m["teardown-reversal"]; !ok {
		t.Fatal("missing teardown-reversal")
	}
}

func TestOldModelPlayground(t *testing.T) {
	cfg := PlaygroundConfig{Seed: 4}
	cfg.GFW = GFWConfig{Model: ModelKhattak2013, Keywords: []string{"ultrasurf"}, DetectionMissProb: -1}
	pg := NewPlayground(cfg)
	// The 2013-era fake-SYN evasion still beats the old model.
	conn := pg.Fetch("/?q=ultrasurf", Strategies()["tcb-creation-syn/ttl"])
	if got := pg.Outcome(conn); got != "success" {
		t.Fatalf("outcome = %q", got)
	}
}
