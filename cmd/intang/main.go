// Command intang runs the INTANG evasion engine against a simulated
// GFW path and reports what happened — the quickest way to see the
// whole system end to end.
//
// Usage:
//
//	intang [-strategy name|spec|auto] [-keyword word] [-trials n] [-trace] [-stats] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"intango/internal/appsim"
	"intango/internal/core"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
	"intango/internal/pcap"
	"intango/internal/tcpstack"
)

func main() {
	var (
		strategy = flag.String("strategy", "auto", "strategy name, raw spec text, 'none', or 'auto' (INTANG selection)")
		keyword  = flag.String("keyword", "ultrasurf", "sensitive keyword the simulated GFW censors")
		trials   = flag.Int("trials", 5, "number of sensitive fetches")
		seed     = flag.Int64("seed", 1, "simulation seed")
		trace    = flag.Bool("trace", false, "print the packet-level trace of the first trial")
		stats    = flag.Bool("stats", false, "print observability counters at exit")
		pcapOut  = flag.String("pcap", "", "write a pcap capture of all traffic to this file")
		list     = flag.Bool("list", false, "list available strategies and exit")
	)
	flag.Parse()

	if *list {
		fmt.Print(core.FormatStrategyTable())
		return
	}

	sim := netem.NewSimulator(*seed)
	path := &netem.Path{Sim: sim}
	const hops = 10
	for i := 0; i < hops; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: fmt.Sprintf("r%d", i), Router: true, Latency: time.Millisecond})
	}
	path.ClientLink.Latency = time.Millisecond

	cfg := gfw.Config{Model: gfw.ModelEvolved2017, Keywords: []string{*keyword}, DetectionMissProb: -1}
	dev := gfw.NewDevice("gfw", cfg, sim.Rand())
	dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	path.Hops[2].Taps = []netem.Processor{dev}

	cliAddr := packet.AddrFrom4(10, 0, 0, 1)
	srvAddr := packet.AddrFrom4(203, 0, 113, 80)
	cli := tcpstack.NewStack(cliAddr, tcpstack.Linux44(), sim)
	srv := tcpstack.NewStack(srvAddr, tcpstack.Linux44(), sim)
	srv.AttachServer(path)
	appsim.ServeHTTP(srv, 80)

	var engine *core.Engine
	var it *intang.INTANG
	switch *strategy {
	case "auto":
		it = intang.New(sim, path, cli, intang.Options{})
		engine = it.Engine
		it.MeasureHops(srvAddr, 80)
		sim.RunFor(2 * time.Second)
		if h, ok := it.HopsTo(srvAddr); ok {
			fmt.Printf("measured hop count: %d (insertion TTL %d)\n", h, engine.Env.InsertionTTL)
		}
	case "none":
		engine = core.NewEngine(sim, path, cli, core.DefaultEnv(hops-1, sim.Rand()))
	default:
		// A registered name or raw spec text, e.g.
		// -strategy 'on:first-payload[teardown(flags=rst,disc=ttl)]'.
		factory, _, ok := core.ResolveStrategy(*strategy)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown strategy %q: not a registered name (try -list) and not spec text\n", *strategy)
			os.Exit(2)
		}
		engine = core.NewEngine(sim, path, cli, core.DefaultEnv(hops-1, sim.Rand()))
		engine.NewStrategy = func(packet.FourTuple) core.Strategy { return factory() }
	}

	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
		bundle := obs.New(reg, obs.NewRecorder(obs.DefaultRingSize, sim.Now))
		path.Obs = bundle
		dev.Obs = bundle
		cli.Obs = bundle
		srv.Obs = bundle
		if it != nil {
			it.Obs = bundle
		}
	}

	var traceFn func(ev netem.TraceEvent)
	if *trace {
		traceFn = func(ev netem.TraceEvent) {
			if ev.Event == "send" || ev.Event == "deliver" || ev.Event == "inject" || ev.Event == "drop-ttl" || ev.Event == "drop-proc" {
				fmt.Println("  ", ev)
			}
		}
	}
	var capture func(ev netem.TraceEvent)
	if *pcapOut != "" {
		f, err := os.Create(*pcapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer fmt.Printf("capture written to %s\n", *pcapOut)
		capture = pcap.Attach(pcap.NewWriter(f), nil)
	}
	path.Trace = func(ev netem.TraceEvent) {
		if traceFn != nil {
			traceFn(ev)
		}
		if capture != nil {
			capture(ev)
		}
	}

	success := 0
	for i := 0; i < *trials; i++ {
		for k := range dev.Stats {
			delete(dev.Stats, k)
		}
		conn := cli.Connect(srvAddr, 80)
		sim.RunFor(500 * time.Millisecond)
		if conn.State() == tcpstack.Established {
			conn.Write(appsim.HTTPRequest("site.example", "/?q="+*keyword))
		}
		sim.RunFor(8 * time.Second)
		injected := dev.Stats["inject-type1"]+dev.Stats["inject-type2"]+dev.Stats["block-enforce"]+dev.Stats["forged-synack"] > 0
		outcome := "failure-1"
		if appsim.HTTPResponseComplete(conn.Received()) && !(conn.GotRST && injected) {
			outcome = "success"
			success++
		} else if conn.GotRST && injected {
			outcome = "failure-2"
		}
		used := *strategy
		if it != nil {
			used = it.ChooseStrategy(srvAddr)
		}
		fmt.Printf("trial %d: %-9s (strategy %s)\n", i+1, outcome, used)
		if outcome == "failure-2" {
			sim.RunFor(95 * time.Second)
		}
		traceFn = nil // print-trace only the first trial; keep capturing
	}
	fmt.Printf("\n%d/%d sensitive fetches evaded the GFW\n", success, *trials)
	if *stats {
		path.FlushCounters()
		fmt.Println("\n== observability counters ==")
		reg.Snapshot().WriteText(os.Stdout)
	}
}
