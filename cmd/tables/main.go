// Command tables regenerates every table and figure of the paper's
// evaluation from the simulated substrate.
//
// Usage:
//
//	tables -what all|1|2|3|4|5|6|tor|vpn|obs|bench|figures [-scale quick|mid|paper] [-seed n]
//
// The paper scale (11 VPs × 77 websites × 50 trials) is faithful but
// slow; quick reproduces the shapes in seconds. -what obs reruns the
// Table 1 campaign with the observability layer attached and dumps
// counters (text and JSON), throughput aggregates, and the flight
// recorder of one failing trial. -what bench measures the trial hot
// path and the serial/parallel campaign loops and writes the report to
// -bench-out (BENCH_netem.json); -what bench-compare OLD.json NEW.json
// diffs two such reports; -what bench-gate COMMITTED.json re-measures
// allocs/trial and fails when it regresses past the committed figure.
//
// -what fleet runs the Table 1 campaign as a sharded, checkpointed
// fleet: -shards cuts the job cube, -shard-procs bounds concurrency,
// and -checkpoint-dir journals per-shard frames so a killed campaign
// resumes from where it stopped (same dir, same flags) with results
// bit-identical to an uninterrupted run. -progress with an address
// serves the fleet plane: /shards, /progress, /metrics, /timeseries,
// /manifest.
package main

import (
	"flag"
	"fmt"
	"os"
	"syscall"
	"time"

	"intango/internal/core"
	"intango/internal/experiment"
	"intango/internal/fleet"

	// Registers the -progress HTTP endpoint implementation; the
	// experiment package itself stays free of net/http.
	_ "intango/internal/experiment/progresshttp"
	"intango/internal/ignorepath"
	"intango/internal/obs"
)

func main() {
	var (
		what      = flag.String("what", "all", "which artifact: all,1,2,3,4,5,6,tor,vpn,ablation,diagnose,explain,obs,health,fleet,goodput,bench,bench-compare,bench-gate,figures,strategies,censors,topo")
		scale     = flag.String("scale", "quick", "campaign scale: quick, mid, paper")
		seed      = flag.Int64("seed", 42, "population/campaign seed")
		benchOut  = flag.String("bench-out", "BENCH_netem.json", "report path for -what bench")
		strategy  = flag.String("strategy", "teardown-rst/ttl", "strategy for -what explain")
		traceDir  = flag.String("trace-dir", "", "directory for causal trace bundles (-what explain and diagnose); empty skips writing")
		progress  = flag.String("progress", "", "emit live campaign progress during -what obs, health, or fleet: 'stderr' or an HTTP listen address like 127.0.0.1:8391")
		healthDir = flag.String("health-dir", "", "directory for the health.json/health.txt artifact pair (-what health or fleet); empty skips writing")

		shards        = flag.Int("shards", 8, "shard count for -what fleet")
		shardProcs    = flag.Int("shard-procs", 4, "concurrent shards for -what fleet")
		checkpointDir = flag.String("checkpoint-dir", "", "checkpoint directory for -what fleet: frames are journaled there and an interrupted campaign resumes from them; empty disables checkpointing")
		ckptEvery     = flag.Int("checkpoint-every", experiment.DefaultCheckpointEvery, "trials between checkpoint frames for -what fleet")
		resultOut     = flag.String("result-out", "", "path for the deterministic fleet result artifact (-what fleet); empty skips writing")
		killAfter     = flag.Int("fleet-kill-after", 0, "SIGKILL this process after N checkpoint frames (-what fleet crash-recovery drills); 0 disables")
	)
	flag.Parse()

	r := experiment.NewRunner(*seed)
	var sc experiment.Scale
	switch *scale {
	case "paper":
		sc = experiment.PaperScale()
	case "mid":
		sc = experiment.Scale{VPs: 11, Servers: 30, Trials: 5}
	default:
		sc = experiment.QuickScale()
	}

	want := func(key string) bool { return *what == "all" || *what == key }
	ran := false

	if want("1") {
		ran = true
		experiment.WriteTable1Campaign(os.Stdout, r, sc)
	}
	if want("2") {
		ran = true
		fmt.Println("== Table 2: client-side middlebox behaviours ==")
		fmt.Print(experiment.FormatTable2(experiment.RunTable2(*seed)))
		fmt.Println()
	}
	if want("3") {
		ran = true
		fmt.Println("== Table 3: server/GFW discrepancies (ignore-path analysis) ==")
		findings := ignorepath.Analyze()
		fmt.Print(ignorepath.FormatTable3(findings))
		fmt.Println("cross-validation:")
		for _, note := range ignorepath.CrossValidation(findings) {
			fmt.Println("  " + note)
		}
		fmt.Println()
	}
	if want("4") {
		ran = true
		experiment.WriteTable4Campaign(os.Stdout, r, sc)
	}
	if want("5") {
		ran = true
		experiment.WriteTable5Campaign(os.Stdout, r)
	}
	if want("6") {
		ran = true
		queries := 5
		if *scale == "paper" {
			queries = 100
		} else if *scale == "mid" {
			queries = 20
		}
		fmt.Printf("== Table 6: TCP DNS evasion (%d queries per VP/resolver) ==\n", queries)
		fmt.Print(experiment.FormatTable6(experiment.RunTable6(r, queries)))
		fmt.Println()
	}
	if want("tor") {
		ran = true
		attempts := 2
		if *scale != "quick" {
			attempts = 5
		}
		fmt.Println("== §7.3: Tor bridge blocking and INTANG rescue ==")
		fmt.Print(experiment.FormatTor(experiment.RunTor(r, attempts)))
		fmt.Println()
	}
	if want("vpn") {
		ran = true
		fmt.Println("== §7.3: OpenVPN-over-TCP ==")
		fmt.Print(experiment.FormatVPN(experiment.RunVPN(r)))
		fmt.Println()
	}
	if want("ablation") {
		ran = true
		fmt.Println("== §8 ablation: GFW countermeasures vs strategy suite ==")
		fmt.Print(experiment.FormatAblation(experiment.RunAblation(r)))
		fmt.Println()
	}
	if want("diagnose") {
		ran = true
		fmt.Println("== §3.4 failure attribution (controlled re-runs) ==")
		vps := experiment.VantagePoints()
		servers := experiment.Servers(sc.Servers, r.Cal, *seed)
		for _, strat := range []string{"teardown-rst/ttl", "improved-teardown", "ooo-ipfrag"} {
			counts := r.DiagnoseCampaign(strat, vps, servers, sc.Trials)
			fmt.Print(experiment.FormatDiagnosis(strat, counts))
		}
		fmt.Println("example controlled re-run (flight-recorder divergence per factor):")
		factory := core.BuiltinFactories()["teardown-rst/ttl"]
	example:
		for _, vp := range vps {
			for _, srv := range servers {
				if r.RunOne(vp, srv, factory, true, 0) != experiment.Success {
					d := r.Diagnose(vp, srv, "teardown-rst/ttl", 0)
					fmt.Print(experiment.FormatDiagnosisDetail(d))
					if *traceDir != "" {
						paths, err := experiment.WriteDiagnosisBundles(d, *traceDir)
						if err != nil {
							fmt.Fprintf(os.Stderr, "write trace bundles: %v\n", err)
							os.Exit(1)
						}
						fmt.Printf("wrote %d trace bundle files under %s\n", len(paths), *traceDir)
					}
					break example
				}
			}
		}
		fmt.Println()
	}
	// Strict equality: a narrative re-run, not a paper artifact.
	if *what == "explain" {
		ran = true
		vps := experiment.VantagePoints()[:sc.VPs]
		servers := experiment.Servers(sc.Servers, r.Cal, *seed)
		narrative, tr, err := r.ExplainFirstFailure(*strategy, vps, servers, sc.Trials)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explain: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(narrative)
		if *traceDir != "" {
			paths, err := tr.WriteBundle(*traceDir, "explain")
			if err != nil {
				fmt.Fprintf(os.Stderr, "write trace bundle: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d trace bundle files under %s\n", len(paths), *traceDir)
		}
	}
	// Strict equality: the obs rerun duplicates Table 1, so "-what all"
	// must not pick it up.
	if *what == "obs" {
		ran = true
		r.Obs = experiment.NewObsSink()
		if *progress != "" {
			opts := &experiment.ProgressOptions{W: os.Stderr}
			if *progress != "stderr" {
				opts.HTTPAddr = *progress
			}
			r.Progress = opts
		}
		start := time.Now()
		rows := experiment.RunTable1Parallel(r, sc)
		wall := time.Since(start)
		fmt.Printf("== Table 1 under observation (%d VPs × %d servers × %d trials) ==\n", sc.VPs, sc.Servers, sc.Trials)
		fmt.Print(experiment.FormatTable1(rows))
		fmt.Println()
		snap := r.Obs.Snapshot()
		fmt.Println("== observability: counters ==")
		snap.WriteText(os.Stdout)
		fmt.Println()
		fmt.Println("== observability: counters (JSON) ==")
		snap.WriteJSON(os.Stdout)
		fmt.Println("== observability: campaign aggregate ==")
		fmt.Println(r.Obs.Aggregate(wall).String())
		fails := r.Obs.Failures()
		if len(fails) == 0 {
			fmt.Fprintf(os.Stderr, "obs: campaign retained no failing trial to replay (%d trials, all succeeded); rerun with a larger -scale or a different -seed\n",
				r.Obs.Trials())
			os.Exit(1)
		}
		f := fails[0]
		fmt.Println()
		fmt.Printf("== observability: flight recorder of one failing trial ==\n")
		fmt.Printf("%s vs %s via %s, trial %d: %s (%d earlier events evicted from the ring)\n",
			f.VP, f.Server, f.Strategy, f.Trial, f.Outcome, f.Dropped)
		fmt.Print(obs.FormatEvents(f.Events))
		fmt.Println()
	}
	// Strict equality: the health campaign duplicates Table 1, so
	// "-what all" must not pick it up.
	if *what == "health" {
		ran = true
		if *progress != "" {
			opts := &experiment.ProgressOptions{W: os.Stderr, Interval: 100 * time.Millisecond}
			if *progress != "stderr" {
				opts.HTTPAddr = *progress
			}
			r.Progress = opts
		}
		h := experiment.RunHealthCampaign(r, sc, "table1-"+*scale)
		fmt.Print(experiment.FormatHealth(h))
		if *healthDir != "" {
			paths, err := experiment.WriteHealthArtifacts(*healthDir, h)
			if err != nil {
				fmt.Fprintf(os.Stderr, "write health artifacts: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d health artifact files under %s\n", len(paths), *healthDir)
		}
	}
	// Strict equality: the fleet campaign duplicates Table 1, so
	// "-what all" must not pick it up.
	if *what == "fleet" {
		ran = true
		opts := fleet.Options{
			Shards:          *shards,
			Procs:           *shardProcs,
			Dir:             *checkpointDir,
			CheckpointEvery: *ckptEvery,
		}
		if *progress != "" {
			opts.W = os.Stderr
			if *progress != "stderr" {
				opts.HTTPAddr = *progress
			}
		}
		if *killAfter > 0 {
			n := *killAfter
			opts.OnFrame = func(_, total int) error {
				if total >= n {
					fmt.Fprintf(os.Stderr, "fleet: kill drill: SIGKILL after %d frames\n", total)
					_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
				}
				return nil
			}
		}
		coord, err := fleet.New(r, sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		res, err := coord.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Printf("== Table 1 via fleet (%d shards × %d procs, %d VPs × %d servers × %d trials) ==\n",
			len(res.Plan.Shards), *shardProcs, sc.VPs, sc.Servers, sc.Trials)
		fmt.Print(experiment.FormatTable1(res.Rows))
		fmt.Println()
		h := res.Health("table1-fleet-"+*scale, *shardProcs, wall)
		fmt.Print(experiment.FormatHealth(h))
		if *healthDir != "" {
			paths, err := experiment.WriteHealthArtifacts(*healthDir, h)
			if err != nil {
				fmt.Fprintf(os.Stderr, "write health artifacts: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d health artifact files under %s\n", len(paths), *healthDir)
		}
		if *resultOut != "" {
			f, err := os.Create(*resultOut)
			if err == nil {
				if werr := res.WriteJSON(f); werr != nil {
					err = werr
				}
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *resultOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *resultOut)
		}
	}
	// Strict equality: the goodput matrix is a congestion demo, not a
	// paper table, so "-what all" must not pick it up.
	if *what == "goodput" {
		ran = true
		r.Obs = experiment.NewObsSink()
		experiment.WriteGoodputCampaign(os.Stdout, r, sc)
	}
	// Strict equality again: benchmarking is minutes of repeated
	// campaigns, so "-what all" must not pick it up either.
	if *what == "bench" {
		ran = true
		fmt.Println("== benchmarking trial hot path and campaigns (this takes a few seconds) ==")
		rep := experiment.RunBench(*seed)
		fmt.Print(experiment.FormatBenchReport(rep))
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		if err := experiment.WriteBenchJSON(f, rep); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
	if *what == "bench-compare" {
		ran = true
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: tables -what bench-compare OLD.json NEW.json")
			os.Exit(2)
		}
		load := func(path string) experiment.BenchReport {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "open %s: %v\n", path, err)
				os.Exit(1)
			}
			defer f.Close()
			rep, err := experiment.ReadBenchJSON(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "parse %s: %v\n", path, err)
				os.Exit(1)
			}
			return rep
		}
		fmt.Print(experiment.CompareBenchReports(load(args[0]), load(args[1])))
	}
	// CI gate: re-measure allocs/trial against the committed report and
	// fail the build past the tolerance. Allocation counts are
	// deterministic, so this holds on loaded CI machines where ns/op
	// cannot.
	if *what == "bench-gate" {
		ran = true
		args := flag.Args()
		if len(args) != 1 {
			fmt.Fprintln(os.Stderr, "usage: tables -what bench-gate COMMITTED.json")
			os.Exit(2)
		}
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "open %s: %v\n", args[0], err)
			os.Exit(1)
		}
		committed, err := experiment.ReadBenchJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "parse %s: %v\n", args[0], err)
			os.Exit(1)
		}
		measured, limit, ok := experiment.RunBenchGate(*seed, committed, 0)
		fmt.Printf("bench-gate: trial allocs/op measured=%d committed=%d limit=%d (%.0f%% tolerance)\n",
			measured, committed.Trial.AllocsPerOp, limit, 100*experiment.BenchGateTolerance)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench-gate: FAIL: allocs/trial regressed past the committed budget; rerun -what bench and commit the new report if the regression is intended\n")
			os.Exit(1)
		}
		fmt.Println("bench-gate: OK")
	}
	// Reference dump, not a paper artifact: "-what all" skips it.
	if *what == "strategies" {
		ran = true
		fmt.Println("== strategy registry: name ↔ spec ==")
		fmt.Print(core.FormatStrategyTable())
	}
	// Reference dump, not a paper artifact: "-what all" skips it.
	if *what == "censors" {
		ran = true
		experiment.WriteCensorsCampaign(os.Stdout, r)
	}
	// Reference dump, not a paper artifact: "-what all" skips it.
	if *what == "topo" {
		ran = true
		experiment.WriteTopoSpecs(os.Stdout, r, sc)
		fmt.Print(experiment.FormatTopoDemo(*seed))
	}
	if want("figures") {
		ran = true
		fmt.Println(experiment.Figure1(r))
		fmt.Println(experiment.Figure2(r))
		fmt.Println(experiment.Figure3(r))
		fmt.Println(experiment.Figure4(r))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown -what %q; pick from all,1,2,3,4,5,6,tor,vpn,ablation,diagnose,explain,obs,health,fleet,goodput,bench,bench-compare,bench-gate,figures,strategies,censors,topo\n", *what)
		os.Exit(2)
	}
}
