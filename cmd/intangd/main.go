// Command intangd is the live evasion proxy daemon: it runs the
// strategy engine long-lived in front of a censored path, accepts real
// TCP clients, and multiplexes their flows through whichever evasion
// strategy is currently selected — switchable at runtime over the
// observability plane.
//
// Usage:
//
//	intangd serve    [-listen addr] [-plane addr] [-censor ref] [-strategy ref] [-seed n] [-idle d] [-ports-file path]
//	intangd fetch    [-addr host:port] [-host name] [-uri path] [-expect ok|blocked] [-timeout d]
//	intangd strategy [-plane addr] <ref>
//	intangd flows    [-plane addr]
//
// serve bridges every accepted TCP connection onto a userspace TCP
// stack dialing the censored origin through the engine; fetch is the
// matching client, one HTTP GET classified as ok (complete 200) or
// blocked; strategy and flows talk to a running daemon's plane.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"intango/internal/appsim"
	"intango/internal/device/uis"
	"intango/internal/intangd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "fetch":
		err = fetch(os.Args[2:])
	case "strategy":
		err = strategy(os.Args[2:])
	case "flows":
		err = flows(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "intangd: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: intangd {serve|fetch|strategy|flows} [flags]")
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "address to accept client TCP connections on")
		plane     = fs.String("plane", "127.0.0.1:0", "observability plane address (/flows, /metrics, /strategy)")
		censorRef = fs.String("censor", "gfw2017", "censor-zoo name or raw censor spec for the simulated path")
		strat     = fs.String("strategy", "", "initial strategy: builtin name, raw spec, or 'pass'")
		seed      = fs.Int64("seed", 1, "world seed")
		idle      = fs.Duration("idle", 60*time.Second, "idle-flow expiry timeout")
		timescale = fs.Float64("timescale", 1, "virtual seconds per wall second on the censored path")
		portsFile = fs.String("ports-file", "", "write bound addresses here (shell-sourceable) once listening")
	)
	fs.Parse(args)

	p, err := intangd.New(intangd.Config{
		Censor:      *censorRef,
		Strategy:    *strat,
		Seed:        *seed,
		IdleTimeout: *idle,
		TimeScale:   *timescale,
	})
	if err != nil {
		return err
	}
	defer p.Close()

	stack := uis.New(p.ClientDevice(), uis.Config{
		Addr:      p.ClientAddr(),
		Seed:      *seed + 1,
		TimeScale: *timescale,
	})
	defer stack.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()

	stopPlane, planeAddr, err := p.ServePlane(*plane)
	if err != nil {
		return err
	}
	defer stopPlane()

	fmt.Printf("intangd: proxy on %s, plane on http://%s, censor %q, strategy %q\n",
		ln.Addr(), planeAddr, *censorRef, p.Strategy())
	if *portsFile != "" {
		body := fmt.Sprintf("proxy=%s\nplane=%s\n", ln.Addr(), planeAddr)
		if err := os.WriteFile(*portsFile, []byte(body), 0o644); err != nil {
			return err
		}
	}

	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go bridge(c, stack, p)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("intangd: shutting down")
	return nil
}

// bridge pipes one accepted client connection through the userspace
// stack to the censored origin. A censor reset surfaces as the
// upstream leg dying, which tears the client leg down with it — the
// client sees exactly what a censored user sees.
func bridge(c net.Conn, stack *uis.Stack, p *intangd.Proxy) {
	defer c.Close()
	up, err := stack.Dial(p.ServerAddr(), 80)
	if err != nil {
		return
	}
	defer up.Close()
	done := make(chan struct{}, 2)
	go func() { io.Copy(up, c); up.Close(); done <- struct{}{} }()
	go func() { io.Copy(c, up); c.Close(); done <- struct{}{} }()
	<-done
	<-done
}

func fetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "proxy address (host:port) to connect to")
		host    = fs.String("host", "origin.example", "Host header")
		uri     = fs.String("uri", "/", "request URI")
		expect  = fs.String("expect", "", "assert the outcome: ok or blocked")
		timeout = fs.Duration("timeout", 10*time.Second, "overall fetch deadline")
	)
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("fetch: -addr required")
	}

	outcome := "blocked"
	c, err := net.DialTimeout("tcp", *addr, *timeout)
	if err == nil {
		c.SetDeadline(time.Now().Add(*timeout))
		var got []byte
		if _, err := c.Write(appsim.HTTPRequest(*host, *uri)); err == nil {
			buf := make([]byte, 4096)
			for !appsim.HTTPResponseComplete(got) {
				n, err := c.Read(buf)
				got = append(got, buf[:n]...)
				if err != nil {
					break
				}
			}
		}
		c.Close()
		if appsim.HTTPResponseComplete(got) && bytes.Contains(got, []byte(" 200 ")) {
			outcome = "ok"
		}
	}

	fmt.Printf("fetch %s%s: %s\n", *host, *uri, outcome)
	if *expect != "" && outcome != *expect {
		return fmt.Errorf("fetch: got %q, expected %q", outcome, *expect)
	}
	return nil
}

func strategy(args []string) error {
	fs := flag.NewFlagSet("strategy", flag.ExitOnError)
	plane := fs.String("plane", "", "plane address (host:port)")
	fs.Parse(args)
	if *plane == "" {
		return fmt.Errorf("strategy: -plane required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("strategy: one strategy reference required")
	}
	u := "http://" + *plane + "/strategy?set=" + url.QueryEscape(fs.Arg(0))
	resp, err := http.Post(u, "text/plain", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		return fmt.Errorf("strategy: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Print(string(body))
	return nil
}

func flows(args []string) error {
	fs := flag.NewFlagSet("flows", flag.ExitOnError)
	plane := fs.String("plane", "", "plane address (host:port)")
	fs.Parse(args)
	if *plane == "" {
		return fmt.Errorf("flows: -plane required")
	}
	resp, err := http.Get("http://" + *plane + "/flows")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
