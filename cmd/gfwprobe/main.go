// Command gfwprobe runs the hypothesis-probing experiments of §4
// against the simulated GFW models and prints what each probe reveals,
// then regenerates the §5.3 insertion-packet analysis (Table 3) and
// its cross-validation notes.
package main

import (
	"flag"
	"fmt"
	"time"

	"intango/internal/gfw"
	"intango/internal/ignorepath"
	"intango/internal/netem"
	"intango/internal/packet"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

// probe builds a fresh device on a short path and returns a send
// helper plus the device.
func probe(model gfw.Model, rstResync bool) (*netem.Simulator, func(p *packet.Packet, fromClient bool), *gfw.Device, *[]string) {
	sim := netem.NewSimulator(11)
	cfg := gfw.Config{Model: model, Keywords: []string{"ultrasurf"}, DetectionMissProb: -1, ResyncOnRSTProb: 1}
	dev := gfw.NewDevice("gfw", cfg, sim.Rand())
	dev.SetRSTResyncs(rstResync)
	dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	var events []string
	dev.OnEvent = func(ev gfw.Event) { events = append(events, ev.Kind+":"+ev.Detail) }
	path := &netem.Path{Sim: sim}
	for i := 0; i < 4; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	path.Hops[1].Taps = []netem.Processor{dev}
	send := func(p *packet.Packet, fromClient bool) {
		if fromClient {
			path.SendFromClient(p)
		} else {
			path.SendFromServer(p)
		}
		sim.Run(1000)
	}
	return sim, send, dev, &events
}

func tcp(fromClient bool, flags uint8, seq, ack packet.Seq, payload string) *packet.Packet {
	if fromClient {
		return packet.NewTCP(cliAddr, 4000, srvAddr, 80, flags, seq, ack, []byte(payload))
	}
	return packet.NewTCP(srvAddr, 80, cliAddr, 4000, flags, seq, ack, []byte(payload))
}

func detected(events []string) bool {
	for _, e := range events {
		if e == "detect:" {
			return true
		}
	}
	return false
}

func main() {
	table3 := flag.Bool("table3", true, "also run the §5.3 ignore-path analysis")
	flag.Parse()

	fmt.Println("== Hypothesized New Behavior 1: TCB creation ==")
	for _, model := range []gfw.Model{gfw.ModelKhattak2013, gfw.ModelEvolved2017} {
		_, send, dev, _ := probe(model, false)
		synack := tcp(true, packet.FlagSYN|packet.FlagACK, 100, 200, "")
		synack.IP.TTL = 2
		synack.Finalize()
		send(synack, true)
		fmt.Printf("  %-14s SYN/ACK alone creates a TCB: %v\n", model, dev.TCBCount() == 1)
	}

	fmt.Println("\n== Hypothesized New Behavior 2: resynchronization state ==")
	_, send, dev, events := probe(gfw.ModelEvolved2017, false)
	send(tcp(true, packet.FlagSYN, 1000, 0, ""), true)
	send(tcp(true, packet.FlagSYN, 5000, 0, ""), true)
	st, _ := dev.TCBState(packet.FourTuple{SrcAddr: cliAddr, SrcPort: 4000, DstAddr: srvAddr, DstPort: 80})
	fmt.Printf("  multiple SYNs            -> state %s\n", st)
	send(tcp(true, packet.FlagPSH|packet.FlagACK, 777777, 1, "GET /?q=ultrasurf HTTP/1.1\r\n\r\n"), true)
	fmt.Printf("  out-of-window request    -> resynchronized and detected: %v\n", detected(*events))

	_, send2, _, events2 := probe(gfw.ModelEvolved2017, false)
	send2(tcp(true, packet.FlagSYN, 1000, 0, ""), true)
	send2(tcp(true, packet.FlagSYN, 5000, 0, ""), true)
	send2(tcp(true, packet.FlagPSH|packet.FlagACK, 999999, 1, "z"), true) // desync
	send2(tcp(true, packet.FlagPSH|packet.FlagACK, 1001, 1, "GET /?q=ultrasurf HTTP/1.1\r\n\r\n"), true)
	fmt.Printf("  after desync packet      -> request detected: %v (evasion works when false)\n", detected(*events2))

	fmt.Println("\n== Hypothesized New Behavior 3: RST handling ==")
	for _, resync := range []bool{false, true} {
		_, send3, _, events3 := probe(gfw.ModelEvolved2017, resync)
		send3(tcp(true, packet.FlagSYN, 1000, 0, ""), true)
		send3(tcp(true, packet.FlagRST, 1001, 0, ""), true)
		send3(tcp(true, packet.FlagPSH|packet.FlagACK, 1001, 1, "GET /?q=ultrasurf HTTP/1.1\r\n\r\n"), true)
		mode := "tears down TCB"
		if resync {
			mode = "enters resync "
		}
		fmt.Printf("  device that %s -> keyword after RST detected: %v\n", mode, detected(*events3))
	}

	if *table3 {
		fmt.Println("\n== §5.3 ignore-path analysis (regenerates Table 3) ==")
		findings := ignorepath.Analyze()
		fmt.Print(ignorepath.FormatTable3(findings))
		fmt.Println("\ncross-validation against older stacks:")
		for _, note := range ignorepath.CrossValidation(findings) {
			fmt.Println("  ", note)
		}
	}
}
