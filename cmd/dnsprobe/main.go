// Command dnsprobe reproduces the §6 poisoned-domain discovery: INTANG
// "probed GFW with Alexa's top 1 million domain names to generate a
// list of poisoned domain names". It builds a censored path, probes a
// candidate list with plain UDP queries, and prints which domains the
// simulated GFW poisons — then shows the same list resolving cleanly
// through INTANG's protected DNS-over-TCP forwarder.
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"intango/internal/appsim"
	"intango/internal/dnsmsg"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "simulation seed")
		domains = flag.String("domains", "www.dropbox.com,www.facebook.com,twitter.com,www.example.com,news.ycombinator.com,golang.org", "comma-separated candidates")
		blocked = flag.String("blocked", "dropbox.com,facebook.com,twitter.com", "domains the simulated GFW poisons (suffix match)")
	)
	flag.Parse()

	sim := netem.NewSimulator(*seed)
	path := &netem.Path{Sim: sim}
	for i := 0; i < 10; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: fmt.Sprintf("r%d", i), Router: true, Latency: time.Millisecond})
	}
	resolverAddr := packet.AddrFrom4(216, 146, 35, 35)
	clientAddr := packet.AddrFrom4(10, 0, 0, 1)

	dev := gfw.NewDevice("gfw", gfw.Config{
		Model:             gfw.ModelEvolved2017,
		PoisonedDomains:   strings.Split(*blocked, ","),
		DetectionMissProb: -1,
	}, sim.Rand())
	dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	path.Hops[2].Taps = []netem.Processor{dev}

	resolver := tcpstack.NewStack(resolverAddr, tcpstack.Linux44(), sim)
	resolver.AttachServer(path)
	appsim.ServeDNSUDP(resolver, appsim.Zone{})
	appsim.ServeDNSTCP(resolver, appsim.Zone{})

	cli := tcpstack.NewStack(clientAddr, tcpstack.Linux44(), sim)
	it := intang.New(sim, path, cli, intang.Options{
		Resolver:   resolverAddr,
		Candidates: []string{"improved-teardown"},
	})
	it.Engine.Env.InsertionTTL = 9
	// Plain-UDP probing must bypass the forwarder: detach it while the
	// hold-on probe runs.
	it.Engine.OnOutbound = nil

	candidates := strings.Split(*domains, ",")
	fmt.Printf("probing %d candidate domains over plain UDP (hold-on heuristic):\n", len(candidates))
	results := intang.ProbePoisonedDomains(sim, cli, resolverAddr, candidates)
	for _, res := range results {
		verdict := "clean"
		if res.Poisoned {
			verdict = "POISONED"
		}
		fmt.Printf("  %-26s %-9s answers=%v\n", res.Domain, verdict, res.Answers)
	}

	poisoned := intang.PoisonedList(results)
	fmt.Printf("\n%d poisoned; re-resolving them through INTANG's DNS forwarder:\n", len(poisoned))
	// Reattach the forwarder.
	it2 := intang.New(sim, path, cli, intang.Options{
		Resolver:   resolverAddr,
		Candidates: []string{"improved-teardown"},
	})
	it2.Engine.Env.InsertionTTL = 9
	for i, domain := range poisoned {
		got := packet.Addr{}
		done := false
		port := uint16(6100 + i)
		cli.ListenUDP(port, func(src packet.Addr, sp uint16, payload []byte) {
			if done {
				return
			}
			if m, err := dnsmsg.Decode(payload); err == nil && len(m.Answers) > 0 {
				done = true
				got = m.Answers[0].Addr
			}
		})
		q, err := dnsmsg.NewQuery(uint16(100+i), domain).Encode()
		if err != nil {
			continue
		}
		cli.SendUDP(port, resolverAddr, 53, q)
		sim.RunFor(8 * time.Second)
		status := "FAILED"
		if done && !isPoisonAddr(got) {
			status = "clean answer"
		}
		fmt.Printf("  %-26s %-14s %v\n", domain, status, got)
	}
}

func isPoisonAddr(a packet.Addr) bool { return a == gfw.PoisonAddr }
