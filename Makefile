GO ?= go

.PHONY: check build fmt vet test race bench bench-smoke bench-compare bench-obs

# check is the full gate: build, formatting, vet, tests, tests under
# the race detector (the observability merge paths are the interesting
# part), and a single-iteration pass over the hot-path benchmarks so a
# broken benchmark can't sit unnoticed until the next `make bench`.
check: build fmt vet test race bench-smoke

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the trial hot path and the serial/parallel campaign
# loops and writes BENCH_netem.json (ns/trial, allocs/trial, trials/sec,
# pool traffic, and the recorded pre-pooling baseline for comparison).
bench:
	$(GO) run ./cmd/tables -what bench -bench-out BENCH_netem.json

# bench-smoke runs each hot-path benchmark exactly once — a correctness
# pass, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTrialHotPath|BenchmarkCampaign' -benchtime 1x .

# bench-compare diffs two BENCH_netem.json artifacts:
#   make bench-compare OLD=old.json NEW=BENCH_netem.json
OLD ?= BENCH_netem.json.old
NEW ?= BENCH_netem.json
bench-compare:
	$(GO) run ./cmd/tables -what bench-compare $(OLD) $(NEW)

# bench-obs measures the instrumentation tax: "disabled" must match the
# pre-observability baseline, "enabled" should stay within a few percent.
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 2s ./internal/experiment/
