GO ?= go

.PHONY: check build fmt vet test race fuzz-smoke bench-smoke bench bench-compare bench-gate bench-obs health-golden fleet-smoke intangd-smoke

# check is the fast gate: build, formatting, vet, tests (which include
# the health-report golden and the disabled-telemetry alloc gate), the
# topology parser's fuzz seed corpus, and a single-iteration pass over
# the hot-path benchmarks so a broken benchmark can't sit unnoticed
# until the next `make bench`. The race detector runs as its own target
# (and its own CI job) because it multiplies test time severalfold.
check: build fmt vet test health-golden fuzz-smoke bench-smoke fleet-smoke intangd-smoke

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz-smoke replays the checked-in seed corpora of the topology and
# censor spec parsers as ordinary tests (no -fuzz: that would fuzz
# indefinitely).
fuzz-smoke:
	$(GO) test -run '^FuzzParseTopo$$' ./internal/topo
	$(GO) test -run '^FuzzParseCensor$$' ./internal/censor

# bench measures the trial hot path, the bandwidth-constrained goodput
# path (shaper + congestion control live, allocs recorded), and the
# serial/parallel campaign loops, writing BENCH_netem.json (ns/trial,
# allocs/trial, trials/sec, pool traffic, and the recorded pre-pooling
# baseline for comparison).
bench:
	$(GO) run ./cmd/tables -what bench -bench-out BENCH_netem.json

# bench-smoke runs each hot-path benchmark exactly once — a correctness
# pass, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTrialHotPath|BenchmarkCampaign' -benchtime 1x .

# bench-compare diffs two BENCH_netem.json artifacts:
#   make bench-compare OLD=old.json NEW=BENCH_netem.json
OLD ?= BENCH_netem.json.old
NEW ?= BENCH_netem.json
bench-compare:
	$(GO) run ./cmd/tables -what bench-compare $(OLD) $(NEW)

# bench-gate is the CI allocation-regression gate: re-measure the trial
# hot path and fail if allocs/trial exceeds the committed
# BENCH_netem.json baseline by more than 5%. Allocs/op is the one
# benchmark statistic that is deterministic on shared CI runners;
# timing drift is diagnosed with bench-compare instead.
bench-gate:
	$(GO) run ./cmd/tables -what bench-gate BENCH_netem.json

# bench-obs gates the instrumentation tax. The alloc gates assert the
# disabled-telemetry arm and the unconstrained (congestion-dormant)
# trial add zero allocations over the seed hot-path baseline (hard
# failures, not measurements); the benchmark then reports the
# enabled-arm overhead, which should stay within a few percent.
bench-obs:
	$(GO) test -run '^TestTelemetryDisabledZeroAlloc$$|^TestCongestionDisabledZeroAlloc$$|^TestFleetDisabledZeroAlloc$$' -count=1 ./internal/experiment/
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 2s ./internal/experiment/

# health-golden replays the post-campaign health report against its
# checked-in golden rendering (byte-identical).
health-golden:
	$(GO) test -run '^TestHealth' -count=1 ./internal/experiment/

# fleet-smoke proves checkpoint/resume end to end with a real SIGKILL:
# run a sharded campaign that kills itself (-fleet-kill-after) two
# checkpoint frames in, resume it from the same checkpoint dir, and
# require the resumed result document to be byte-identical to a fresh
# single-shard serial run. Exercises the exact crash path the in-test
# OnFrame hook cannot: a process that dies without deferred cleanup.
FLEET_TMP := $(shell mktemp -d /tmp/fleet-smoke.XXXXXX)
fleet-smoke:
	$(GO) build -o $(FLEET_TMP)/tables ./cmd/tables
	-$(FLEET_TMP)/tables -what fleet -scale small -shards 4 -shard-procs 2 \
		-checkpoint-dir $(FLEET_TMP)/ckpt -checkpoint-every 8 \
		-fleet-kill-after 2 -result-out $(FLEET_TMP)/killed.json >/dev/null 2>&1
	$(FLEET_TMP)/tables -what fleet -scale small -shards 4 -shard-procs 2 \
		-checkpoint-dir $(FLEET_TMP)/ckpt -checkpoint-every 8 \
		-result-out $(FLEET_TMP)/resumed.json >/dev/null
	$(FLEET_TMP)/tables -what fleet -scale small -shards 1 -shard-procs 1 \
		-result-out $(FLEET_TMP)/serial.json >/dev/null
	cmp $(FLEET_TMP)/resumed.json $(FLEET_TMP)/serial.json
	@echo "fleet-smoke: kill/resume result is bit-identical to serial"
	@rm -rf $(FLEET_TMP)

# intangd-smoke boots the live evasion daemon against a fully pinned
# gfw2017 (no sampled probabilities), then drives the whole loop from
# the outside: a keyword fetch that must evade under teardown-reversal,
# a live strategy switch to passthrough over the plane, the same fetch
# now censored, and a /flows scrape that must show both flows — the
# evaded one under its strategy and the censored one with got_rst. The
# censored fetch runs last so its 90-second pair blocklist never sits
# in the smoke's way.
INTANGD_TMP := $(shell mktemp -d /tmp/intangd-smoke.XXXXXX)
INTANGD_CENSOR := tcb:evolved detect:keywords(ultrasurf) react:reset(type1) react:reset(type2) react:block(dur=1m30s) param:miss(p=0) param:resync(p=0) param:seglastwins(p=0)
intangd-smoke:
	$(GO) build -o $(INTANGD_TMP)/intangd ./cmd/intangd
	$(INTANGD_TMP)/intangd serve -ports-file $(INTANGD_TMP)/ports.env \
		-strategy teardown-reversal -censor '$(INTANGD_CENSOR)' \
		> $(INTANGD_TMP)/serve.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 100); do [ -s $(INTANGD_TMP)/ports.env ] && break; sleep 0.1; done; \
	. $(INTANGD_TMP)/ports.env; \
	$(INTANGD_TMP)/intangd fetch -addr $$proxy -uri '/search?q=ultrasurf' -expect ok && \
	$(INTANGD_TMP)/intangd strategy -plane $$plane pass >/dev/null && \
	$(INTANGD_TMP)/intangd fetch -addr $$proxy -uri '/search?q=ultrasurf' -expect blocked && \
	$(INTANGD_TMP)/intangd flows -plane $$plane > $(INTANGD_TMP)/flows.json; \
	status=$$?; kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	[ $$status -eq 0 ] || { cat $(INTANGD_TMP)/serve.log; exit $$status; }; \
	grep -q 'teardown-reversal' $(INTANGD_TMP)/flows.json && \
	grep -q '"got_rst":true' $(INTANGD_TMP)/flows.json
	@echo "intangd-smoke: evaded, switched live, censored, flows observed"
	@rm -rf $(INTANGD_TMP)
