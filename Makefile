GO ?= go

.PHONY: check build fmt vet test race fuzz-smoke bench-smoke bench bench-compare bench-obs health-golden

# check is the fast gate: build, formatting, vet, tests (which include
# the health-report golden and the disabled-telemetry alloc gate), the
# topology parser's fuzz seed corpus, and a single-iteration pass over
# the hot-path benchmarks so a broken benchmark can't sit unnoticed
# until the next `make bench`. The race detector runs as its own target
# (and its own CI job) because it multiplies test time severalfold.
check: build fmt vet test health-golden fuzz-smoke bench-smoke

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz-smoke replays the checked-in seed corpora of the topology and
# censor spec parsers as ordinary tests (no -fuzz: that would fuzz
# indefinitely).
fuzz-smoke:
	$(GO) test -run '^FuzzParseTopo$$' ./internal/topo
	$(GO) test -run '^FuzzParseCensor$$' ./internal/censor

# bench measures the trial hot path, the bandwidth-constrained goodput
# path (shaper + congestion control live, allocs recorded), and the
# serial/parallel campaign loops, writing BENCH_netem.json (ns/trial,
# allocs/trial, trials/sec, pool traffic, and the recorded pre-pooling
# baseline for comparison).
bench:
	$(GO) run ./cmd/tables -what bench -bench-out BENCH_netem.json

# bench-smoke runs each hot-path benchmark exactly once — a correctness
# pass, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTrialHotPath|BenchmarkCampaign' -benchtime 1x .

# bench-compare diffs two BENCH_netem.json artifacts:
#   make bench-compare OLD=old.json NEW=BENCH_netem.json
OLD ?= BENCH_netem.json.old
NEW ?= BENCH_netem.json
bench-compare:
	$(GO) run ./cmd/tables -what bench-compare $(OLD) $(NEW)

# bench-obs gates the instrumentation tax. The alloc gates assert the
# disabled-telemetry arm and the unconstrained (congestion-dormant)
# trial add zero allocations over the seed hot-path baseline (hard
# failures, not measurements); the benchmark then reports the
# enabled-arm overhead, which should stay within a few percent.
bench-obs:
	$(GO) test -run '^TestTelemetryDisabledZeroAlloc$$|^TestCongestionDisabledZeroAlloc$$' -count=1 ./internal/experiment/
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 2s ./internal/experiment/

# health-golden replays the post-campaign health report against its
# checked-in golden rendering (byte-identical).
health-golden:
	$(GO) test -run '^TestHealth' -count=1 ./internal/experiment/
