GO ?= go

.PHONY: check build vet test race bench-obs

# check is the full gate: build, vet, tests, then tests under the race
# detector (the observability merge paths are the interesting part).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-obs measures the instrumentation tax: "disabled" must match the
# pre-observability baseline, "enabled" should stay within a few percent.
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 2s ./internal/experiment/
