// Package intango is a faithful, fully simulated reproduction of
// "Your State is Not Mine: A Closer Look at Evading Stateful Internet
// Censorship" (Wang, Cao, Qian, Song, Krishnamurthy — IMC 2017).
//
// It provides, from scratch and on the standard library only:
//
//   - executable models of the GFW's old (2013) and evolved (2017) DPI
//     state machines, including the re-synchronization state, the
//     type-1/type-2 reset injectors, the 90-second blocklist with
//     forged SYN/ACKs, DNS poisoning, and Tor active-probe IP blocking;
//   - endpoint TCP stacks with the version-specific "ignore path"
//     behaviour of five Linux generations (Table 3, §5.3);
//   - the full evasion-strategy suite of Tables 1 and 4, the
//     insertion-packet crafting of Table 5, and the INTANG
//     measurement-driven evasion engine (§6);
//   - a deterministic discrete-event network simulator with
//     middleboxes, loss, TTL semantics and ICMP, over which every
//     table and figure of the paper's evaluation is regenerated.
//
// The root package re-exports the pieces a downstream user needs; the
// implementation lives in internal/ packages documented in DESIGN.md.
//
// Quick start:
//
//	pg := intango.NewPlayground(intango.PlaygroundConfig{Seed: 1})
//	conn := pg.Fetch("/?q=ultrasurf", intango.Strategies()["teardown-reversal"])
//	fmt.Println(pg.Outcome(conn)) // "success" — evaded
package intango

import (
	"intango/internal/core"
	"intango/internal/experiment"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// Re-exported core types: packet crafting and strategies.
type (
	// Packet is one IPv4 datagram in the simulation.
	Packet = packet.Packet
	// Addr is an IPv4 address.
	Addr = packet.Addr
	// Seq is a TCP sequence number with modular arithmetic.
	Seq = packet.Seq
	// Strategy transforms a connection's outbound packets to evade the
	// censor.
	Strategy = core.Strategy
	// StrategyFactory builds per-connection strategy instances.
	StrategyFactory = core.Factory
	// Discrepancy selects how an insertion packet is made
	// server-invisible (TTL, bad checksum, MD5 option, ...).
	Discrepancy = core.Discrepancy
	// StrategySpec is a declarative strategy specification — a set of
	// trigger→action rules with a canonical single-line text encoding
	// (see ParseSpec / CompileSpec and DESIGN.md "Strategy
	// composition").
	StrategySpec = core.Spec
	// StrategyEntry pairs a built-in strategy's table alias with its
	// spec.
	StrategyEntry = core.Entry
	// Engine is the client-side interception engine strategies run in.
	Engine = core.Engine
	// GFWConfig parameterizes a censor device model.
	GFWConfig = gfw.Config
	// GFWDevice is one on-path censor instance.
	GFWDevice = gfw.Device
	// GFWModel selects the old (2013) or evolved (2017) state machine.
	GFWModel = gfw.Model
	// StackProfile is a TCP-stack behaviour profile (Linux version).
	StackProfile = tcpstack.Profile
	// Conn is an endpoint TCP connection.
	Conn = tcpstack.Conn
	// Stack is an endpoint TCP/IP stack.
	Stack = tcpstack.Stack
	// Simulator is the deterministic discrete-event scheduler.
	Simulator = netem.Simulator
	// Path is a client—hops—server topology.
	Path = netem.Path
	// INTANG is the measurement-driven evasion controller of §6.
	INTANG = intang.INTANG
	// INTANGOptions configures an INTANG instance.
	INTANGOptions = intang.Options
	// Runner executes paper-scale experiment campaigns.
	Runner = experiment.Runner
)

// Re-exported discrepancy constants (Table 5).
const (
	DiscTTL          = core.DiscTTL
	DiscBadChecksum  = core.DiscBadChecksum
	DiscBadAck       = core.DiscBadAck
	DiscMD5          = core.DiscMD5
	DiscOldTimestamp = core.DiscOldTimestamp
	DiscNoFlag       = core.DiscNoFlag
)

// Re-exported GFW models.
const (
	ModelKhattak2013 = gfw.ModelKhattak2013
	ModelEvolved2017 = gfw.ModelEvolved2017
)

// StackProfiles returns the modelled server TCP stacks, newest first
// (Linux 4.4 … 2.4.37).
func StackProfiles() []StackProfile { return tcpstack.AllProfiles() }

// Strategies returns the built-in strategy suite keyed by the names
// used in the paper's tables (e.g. "improved-teardown",
// "teardown-reversal", "creation-resync-desync", "prefill/ttl").
func Strategies() map[string]StrategyFactory {
	return core.BuiltinFactories()
}

// ParseSpec parses the single-line strategy grammar, e.g.
//
//	on:first-payload[teardown(flags=rst,disc=ttl); inject(desync)]
//
// The result round-trips: ParseSpec(spec.String()) == spec.
func ParseSpec(text string) (StrategySpec, error) { return core.ParseSpec(text) }

// CompileSpec compiles a spec into a per-connection strategy factory
// usable with Playground.Fetch or an Engine.
func CompileSpec(spec StrategySpec) StrategyFactory { return spec.Factory() }

// RegisteredStrategies lists the built-in suite as (alias, spec) pairs
// in table order — the same inventory `cmd/tables -what strategies`
// prints.
func RegisteredStrategies() []StrategyEntry { return core.Registry() }

// NewINTANG wires an INTANG instance between a client stack and the
// client end of a path.
func NewINTANG(sim *Simulator, path *Path, stack *Stack, opts INTANGOptions) *INTANG {
	return intang.New(sim, path, stack, opts)
}

// NewRunner builds an experiment runner over the paper's populations.
func NewRunner(seed int64) *Runner {
	return experiment.NewRunner(seed)
}

// AddrFrom4 builds an address from four octets.
func AddrFrom4(a, b, c, d byte) Addr { return packet.AddrFrom4(a, b, c, d) }
