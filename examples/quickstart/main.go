// Quickstart: censor a sensitive HTTP request with the simulated GFW,
// then evade it with one of the paper's strategies — entirely through
// the public intango API.
package main

import (
	"fmt"

	"intango"
)

func main() {
	// A playground is a ready-made client—GFW—server topology with an
	// evolved-model (2017) GFW device censoring "ultrasurf".
	pg := intango.NewPlayground(intango.PlaygroundConfig{Seed: 1})

	// 1. A clean request sails through.
	conn := pg.Fetch("/index.html", nil)
	fmt.Printf("clean request:              %s\n", pg.Outcome(conn))

	// 2. A sensitive request gets the type-1/type-2 reset treatment and
	//    the client/server pair lands on the 90-second blocklist.
	pg.WaitOutBlock()
	conn = pg.Fetch("/?q=ultrasurf", nil)
	fmt.Printf("sensitive request:          %s\n", pg.Outcome(conn))

	// 3. Wait out the blocklist, then send the same request through the
	//    "TCB Teardown + TCB Reversal" combined strategy (Fig. 4).
	pg.WaitOutBlock()
	strategies := intango.Strategies()
	conn = pg.Fetch("/?q=ultrasurf", strategies["teardown-reversal"])
	fmt.Printf("with teardown-reversal:     %s\n", pg.Outcome(conn))

	// 4. The desynchronization-based combined strategy (Fig. 3) works
	//    too — as does a fresh playground whose GFW still runs the old
	//    2013 model against the 2013-era fake-SYN trick.
	pg.WaitOutBlock()
	conn = pg.Fetch("/?q=ultrasurf", strategies["creation-resync-desync"])
	fmt.Printf("with creation-resync-desync: %s\n", pg.Outcome(conn))

	old := intango.NewPlayground(intango.PlaygroundConfig{
		Seed: 2,
		GFW: intango.GFWConfig{
			Model:             intango.ModelKhattak2013,
			Keywords:          []string{"ultrasurf"},
			DetectionMissProb: -1,
		},
	})
	conn = old.Fetch("/?q=ultrasurf", strategies["tcb-creation-syn/ttl"])
	fmt.Printf("2013 trick vs 2013 model:   %s\n", old.Outcome(conn))

	// ...but the same trick fails against the evolved model, which is
	// the paper's headline finding.
	pg.WaitOutBlock()
	conn = pg.Fetch("/?q=ultrasurf", strategies["tcb-creation-syn/ttl"])
	fmt.Printf("2013 trick vs 2017 model:   %s\n", pg.Outcome(conn))
}
