// dnsevasion demonstrates §7.2: the GFW poisons UDP DNS lookups of a
// censored domain; INTANG's DNS forwarder converts them to evasion-
// protected DNS-over-TCP and returns the true answer transparently.
package main

import (
	"fmt"
	"time"

	"intango/internal/appsim"
	"intango/internal/dnsmsg"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

func main() {
	const domain = "www.dropbox.com"
	realAddr := packet.AddrFrom4(162, 125, 248, 18)
	resolverAddr := packet.AddrFrom4(216, 146, 35, 35)
	clientAddr := packet.AddrFrom4(10, 0, 0, 1)

	build := func(withINTANG bool) (answer packet.Addr, poisoned bool) {
		sim := netem.NewSimulator(3)
		path := &netem.Path{Sim: sim}
		for i := 0; i < 10; i++ {
			path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
		}
		dev := gfw.NewDevice("gfw", gfw.Config{
			Model:             gfw.ModelEvolved2017,
			PoisonedDomains:   []string{"dropbox.com"},
			DetectionMissProb: -1,
		}, sim.Rand())
		dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
		path.Hops[2].Taps = []netem.Processor{dev}

		resolver := tcpstack.NewStack(resolverAddr, tcpstack.Linux44(), sim)
		resolver.AttachServer(path)
		zone := appsim.Zone{domain: realAddr}
		appsim.ServeDNSUDP(resolver, zone)
		appsim.ServeDNSTCP(resolver, zone)

		cli := tcpstack.NewStack(clientAddr, tcpstack.Linux44(), sim)
		if withINTANG {
			it := intang.New(sim, path, cli, intang.Options{
				Resolver:   resolverAddr,
				Candidates: []string{"improved-teardown"},
			})
			it.Engine.Env.InsertionTTL = 9
		} else {
			cli.AttachClient(path)
		}

		got := false
		cli.ListenUDP(5353, func(src packet.Addr, sp uint16, payload []byte) {
			if got {
				return // first answer wins, as in a real resolver library
			}
			if m, err := dnsmsg.Decode(payload); err == nil && len(m.Answers) > 0 {
				got = true
				answer = m.Answers[0].Addr
			}
		})
		q, err := dnsmsg.NewQuery(1, domain).Encode()
		if err != nil {
			panic(err)
		}
		cli.SendUDP(5353, resolverAddr, 53, q)
		sim.RunFor(10 * time.Second)
		return answer, answer == gfw.PoisonAddr
	}

	fmt.Printf("resolving %s through a censored path:\n\n", domain)
	ans, poisoned := build(false)
	fmt.Printf("plain UDP DNS:   %-16v poisoned=%v\n", ans, poisoned)
	ans, poisoned = build(true)
	fmt.Printf("INTANG forwarder: %-16v poisoned=%v (true address %v)\n", ans, poisoned, realAddr)
}
