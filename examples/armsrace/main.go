// armsrace plays the §8 arms race with the declarative spec layer:
// starting from the Table 4 winner strategies, it enumerates single-edit
// mutations of their specs (every disc= swapped through the Table 5
// discrepancy vocabulary, every teardown flags= swapped through the
// RST/RST+ACK/FIN+ACK variants), deduplicates by canonical spec string,
// and runs each mutant end-to-end against two censors: the measured
// 2017 GFW and a §8-hardened one with every discussed countermeasure
// switched on (checksum validation, MD5 rejection, data trusted only
// after the server ACKs it). The grid shows what each hardening breaks
// and what survives — Ptacek & Newsham's ambiguity is structural: no
// hardening eliminates every mutant.
package main

import (
	"fmt"
	"strings"

	"intango"
)

// winners are the Table 4 strategies the mutation walk starts from.
var winners = []string{
	"improved-teardown",
	"improved-prefill",
	"creation-resync-desync",
	"teardown-reversal",
}

var discVocab = []string{"ttl", "md5", "bad-checksum", "bad-ack", "old-timestamp"}
var flagVocab = []string{"rst", "rstack", "finack"}

// mutant is one candidate strategy in the race.
type mutant struct {
	origin string // winner alias it was derived from ("" for the winner itself)
	spec   intango.StrategySpec
}

// mutations generates every single-argument edit of text: each disc=
// occurrence swapped through discVocab, each flags= occurrence swapped
// through flagVocab. Results are re-parsed, so only grammatical
// mutants survive.
func mutations(text string) []intango.StrategySpec {
	var out []intango.StrategySpec
	swap := func(key string, vocab []string) {
		for pos := 0; ; {
			i := strings.Index(text[pos:], key)
			if i < 0 {
				break
			}
			start := pos + i + len(key)
			end := start
			for end < len(text) && (text[end] == '-' || text[end] >= 'a' && text[end] <= 'z' ||
				text[end] >= '0' && text[end] <= '9') {
				end++
			}
			old := text[start:end]
			for _, v := range vocab {
				if v == old {
					continue
				}
				if spec, err := intango.ParseSpec(text[:start] + v + text[end:]); err == nil {
					out = append(out, spec)
				}
			}
			pos = end
		}
	}
	swap("disc=", discVocab)
	swap("flags=", flagVocab)
	return out
}

// enumerate builds the deduplicated mutant population: the winners
// themselves plus every distinct single-edit mutation.
func enumerate() []mutant {
	seen := make(map[string]bool)
	var pop []mutant
	add := func(origin string, spec intango.StrategySpec) {
		canon := spec.String()
		if seen[canon] {
			return
		}
		seen[canon] = true
		pop = append(pop, mutant{origin, spec})
	}
	byAlias := make(map[string]intango.StrategySpec)
	for _, e := range intango.RegisteredStrategies() {
		byAlias[e.Alias] = e.Spec
	}
	for _, alias := range winners {
		spec, ok := byAlias[alias]
		if !ok {
			panic("unknown winner " + alias)
		}
		add("", spec)
		for _, m := range mutations(spec.String()) {
			add(alias, m)
		}
	}
	return pop
}

func measuredGFW() intango.GFWConfig {
	return intango.GFWConfig{
		Model:             intango.ModelEvolved2017,
		Keywords:          []string{"ultrasurf"},
		DetectionMissProb: -1,
	}
}

func hardenedGFW() intango.GFWConfig {
	g := measuredGFW()
	g.ValidateTCPChecksum = true
	g.ValidateMD5 = true
	g.TrustDataAfterServerACK = true
	return g
}

// run fetches a censored page once through spec against the censor and
// returns the paper-notation outcome.
func run(gfwCfg intango.GFWConfig, spec intango.StrategySpec) string {
	pg := intango.NewPlayground(intango.PlaygroundConfig{Seed: 9, GFW: gfwCfg})
	conn := pg.Fetch("/?q=ultrasurf", intango.CompileSpec(spec))
	return pg.Outcome(conn)
}

func main() {
	pop := enumerate()
	fmt.Printf("arms race: %d distinct specs (4 Table 4 winners + single-edit mutants)\n", len(pop))
	fmt.Println("censors: measured = evolved 2017 GFW; hardened = +checksum +md5 +ack-trust (§8)")
	fmt.Println()
	fmt.Printf("%-9s %-9s %-22s %s\n", "measured", "hardened", "origin", "spec")

	var survivors []mutant
	for _, m := range pop {
		a := run(measuredGFW(), m.spec)
		b := run(hardenedGFW(), m.spec)
		origin := m.origin
		if origin == "" {
			origin = "(winner)"
		}
		fmt.Printf("%-9s %-9s %-22s %s\n", a, b, origin, m.spec)
		if b == "success" {
			survivors = append(survivors, m)
		}
	}

	fmt.Println()
	fmt.Printf("%d/%d mutants still evade the fully hardened censor:\n", len(survivors), len(pop))
	for _, m := range survivors {
		fmt.Printf("  %s\n", m.spec)
	}
	fmt.Println()
	fmt.Println("Every §8 hardening reshuffles which mutants work; none empties the set.")
}
