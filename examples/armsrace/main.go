// armsrace walks the §8 countermeasure ladder: each hardening the
// paper discusses for the GFW, what it breaks, what survives, and the
// counter-move it opens — the arms race, playable.
package main

import (
	"fmt"

	"intango"
)

func run(name string, gfwCfg intango.GFWConfig, serverOld bool, strategy string) string {
	cfg := intango.PlaygroundConfig{Seed: 9, GFW: gfwCfg}
	if serverOld {
		cfg.ServerStack = oldServer()
	}
	pg := intango.NewPlayground(cfg)
	var factory intango.StrategyFactory
	if strategy != "none" {
		factory = intango.Strategies()[strategy]
	}
	conn := pg.Fetch("/?q=ultrasurf", factory)
	return pg.Outcome(conn)
}

func baseGFW() intango.GFWConfig {
	return intango.GFWConfig{
		Model:             intango.ModelEvolved2017,
		Keywords:          []string{"ultrasurf"},
		DetectionMissProb: -1,
	}
}

func main() {
	fmt.Println("Round 0 — the measured 2017 GFW:")
	fmt.Printf("  no strategy:            %s\n", run("measured", baseGFW(), false, "none"))
	fmt.Printf("  improved-teardown:      %s\n", run("measured", baseGFW(), false, "improved-teardown"))
	fmt.Printf("  prefill/bad-checksum:   %s\n", run("measured", baseGFW(), false, "prefill/bad-checksum"))

	fmt.Println("\nRound 1 — censor validates TCP checksums:")
	g := baseGFW()
	g.ValidateTCPChecksum = true
	fmt.Printf("  prefill/bad-checksum:   %s   (insertion family dead)\n", run("ck", g, false, "prefill/bad-checksum"))
	fmt.Printf("  improved-teardown:      %s   (TTL+MD5 untouched)\n", run("ck", g, false, "improved-teardown"))

	fmt.Println("\nRound 2 — censor also ignores unsolicited-MD5 packets:")
	g.ValidateMD5 = true
	fmt.Printf("  improved-teardown:      %s   (its TTL RST still lands)\n", run("md5", g, false, "improved-teardown"))
	fmt.Printf("  md5-request vs 4.4:     %s   (server validates MD5 too)\n", run("md5", g, false, "md5-request"))
	fmt.Printf("  md5-request vs 2.4.37:  %s   (§8's opened counter-move)\n", run("md5", g, true, "md5-request"))

	fmt.Println("\nRound 3 — censor trusts client data only after the server ACKs it:")
	g2 := baseGFW()
	g2.TrustDataAfterServerACK = true
	fmt.Printf("  creation-resync-desync: %s   (the junk range is never ACKed)\n", run("ack", g2, false, "creation-resync-desync"))
	fmt.Printf("  improved-prefill:       %s   (the ACK covers both copies!)\n", run("ack", g2, false, "improved-prefill"))
	fmt.Printf("  teardown-reversal:      %s   (orientation confusion unaffected)\n", run("ack", g2, false, "teardown-reversal"))

	fmt.Println("\nThe ambiguity Ptacek & Newsham described is structural: every")
	fmt.Println("hardening shifts which strategies work, none eliminates them all.")
}

// oldServer returns a pre-RFC-2385 stack profile via the experiment
// population (Linux 2.4.37).
func oldServer() intango.StackProfile {
	for _, p := range allProfiles() {
		if p.Name == "linux-2.4.37" {
			return p
		}
	}
	panic("missing profile")
}

func allProfiles() []intango.StackProfile { return intango.StackProfiles() }
