// torevasion demonstrates §7.3: on a Tor-filtering path the GFW
// fingerprints the bridge handshake, resets the connection, and — after
// active probing — null-routes the bridge IP; INTANG keeps the same
// bridge usable.
package main

import (
	"fmt"
	"time"

	"intango/internal/appsim"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

const bridgePort = 9001

func buildPath(filtered bool, seed int64) (*netem.Simulator, *netem.Path, *gfw.Device, packet.Addr) {
	bridge := packet.AddrFrom4(52, 3, 17, 99)
	sim := netem.NewSimulator(seed)
	path := &netem.Path{Sim: sim}
	for i := 0; i < 11; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	dev := gfw.NewDevice("gfw", gfw.Config{
		Model:             gfw.ModelEvolved2017,
		TorFiltering:      filtered,
		ActiveProbeDelay:  10 * time.Second,
		DetectionMissProb: -1,
	}, sim.Rand())
	dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	path.Hops[3].Taps = []netem.Processor{dev}
	path.Hops[3].Processors = []netem.Processor{dev.IPFilter()}
	srv := tcpstack.NewStack(bridge, tcpstack.Linux44(), sim)
	srv.AttachServer(path)
	appsim.ServeTorBridge(srv, bridgePort)
	return sim, path, dev, bridge
}

func torAttempt(sim *netem.Simulator, cli *tcpstack.Stack, bridge packet.Addr) string {
	conn := cli.Connect(bridge, bridgePort)
	sim.RunFor(500 * time.Millisecond)
	if conn.State() != tcpstack.Established {
		return "connect failed (blackholed?)"
	}
	conn.Write(appsim.TorClientHello())
	sim.RunFor(2 * time.Second)
	if conn.GotRST {
		return "reset during handshake"
	}
	conn.Write([]byte("relay-cell"))
	sim.RunFor(2 * time.Second)
	if conn.GotRST || len(conn.Received()) == 0 {
		return "circuit dead"
	}
	return "circuit up"
}

func main() {
	client := packet.AddrFrom4(10, 0, 0, 1)

	fmt.Println("Northern-China path (no Tor-filtering devices):")
	sim, path, _, bridge := buildPath(false, 1)
	cli := tcpstack.NewStack(client, tcpstack.Linux44(), sim)
	cli.AttachClient(path)
	fmt.Println("  plain Tor:", torAttempt(sim, cli, bridge))

	fmt.Println("\nFiltered path:")
	sim, path, dev, bridge := buildPath(true, 2)
	cli = tcpstack.NewStack(client, tcpstack.Linux44(), sim)
	cli.AttachClient(path)
	fmt.Println("  plain Tor:", torAttempt(sim, cli, bridge))
	sim.RunFor(time.Minute)
	fmt.Printf("  bridge IP null-routed after active probing: %v\n", dev.IsIPBlocked(bridge))
	sim.RunFor(2 * time.Minute) // blocklist lapses; IP block remains
	fmt.Println("  reconnect attempt:", torAttempt(sim, cli, bridge))

	fmt.Println("\nFiltered path with INTANG (improved TCB teardown):")
	sim, path, dev, bridge = buildPath(true, 3)
	cli = tcpstack.NewStack(client, tcpstack.Linux44(), sim)
	it := intang.New(sim, path, cli, intang.Options{Candidates: []string{"improved-teardown"}})
	it.Engine.Env.InsertionTTL = 10
	fmt.Println("  protected Tor:", torAttempt(sim, cli, bridge))
	sim.RunFor(time.Minute)
	fmt.Printf("  bridge fingerprinted: %v (the GFW never saw the handshake)\n", dev.IsIPBlocked(bridge))
}
