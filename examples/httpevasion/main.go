// httpevasion sweeps the full strategy suite against both GFW
// generations on one path, printing the per-strategy outcome matrix —
// a one-screen recreation of the arc from Table 1 to Table 4.
package main

import (
	"fmt"
	"sort"

	"intango"
)

func main() {
	strategies := intango.Strategies()
	names := make([]string, 0, len(strategies))
	for name := range strategies {
		names = append(names, name)
	}
	sort.Strings(names)

	models := []struct {
		label string
		model intango.GFWModel
	}{
		{"2013 model", intango.ModelKhattak2013},
		{"2017 model", intango.ModelEvolved2017},
	}

	fmt.Printf("%-30s %-12s %-12s\n", "strategy", models[0].label, models[1].label)
	for _, name := range names {
		fmt.Printf("%-30s", name)
		for _, m := range models {
			pg := intango.NewPlayground(intango.PlaygroundConfig{
				Seed: 7,
				GFW: intango.GFWConfig{
					Model:             m.model,
					Keywords:          []string{"ultrasurf"},
					DetectionMissProb: -1,
				},
			})
			conn := pg.Fetch("/?q=ultrasurf", strategies[name])
			fmt.Printf(" %-12s", pg.Outcome(conn))
		}
		fmt.Println()
	}
	fmt.Println("\nNote how every pre-2017 strategy that relied on TCB creation or")
	fmt.Println("FIN teardown flipped to failure-2 against the evolved model, while")
	fmt.Println("the §5 strategies (resync/desync, reversal, improved-*) beat both.")
}
