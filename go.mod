module intango

go 1.22
